//! BENCH_cluster — the fleet-wide swap control plane at scale.
//!
//! Ten nodes × hundreds of tenants under one [`snapify::FleetScheduler`]:
//! skewed placement bin-packed through each node's swap scheduler, then
//! proactive load-driven migrations whose device state flows through
//! the shared cross-node snapstore pool. Two claims are measured and
//! asserted inline:
//!
//! * **Warm cross-node restore** — a migrating tenant restores from
//!   chunks the destination already holds; the pool ships ≥80% fewer
//!   bytes than a cold restore fetching everything.
//! * **Domain-count invariance** — the fleet's observable digest is
//!   byte-identical whether the simulation ran on 1 domain or several.
//!
//! `--quick` (or `BENCH_QUICK=1`) runs a smaller fleet under distinct
//! row names, so quick and full rows coexist in the committed baseline
//! and the perf gate is never vacuous in either mode.

use snapify::{FleetConfig, FleetReport, FleetScheduler};
use snapify_bench::{header, Table};

struct Row {
    name: String,
    report: FleetReport,
}

fn run(name: &str, cfg: FleetConfig) -> Row {
    let report = FleetScheduler::new(cfg).run();
    Row {
        name: name.to_string(),
        report,
    }
}

fn fleet_cfg(nodes: usize, tenants: usize, max_migrations: usize, domains: u32) -> FleetConfig {
    FleetConfig {
        nodes,
        domains,
        tenants,
        base_bytes: if nodes >= 10 { 48 << 20 } else { 8 << 20 },
        unique_bytes: if nodes >= 10 { 4 << 20 } else { 1 << 20 },
        max_migrations,
        ..FleetConfig::default()
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("BENCH_QUICK").is_ok_and(|v| v == "1");
    let cfg = FleetConfig::default();
    header(
        "BENCH_cluster: fleet control plane over the shared pool",
        &cfg.params,
    );
    println!(
        "mode: {} (quick rows keep their own names; the baseline holds both)",
        if quick { "quick" } else { "full" }
    );

    let (prefix, nodes, tenants, migs, par_domains) = if quick {
        ("fleet-quick", 4, 24, 3, 2)
    } else {
        ("fleet10x200", 10, 200, 12, 4)
    };
    let serial = run(&format!("{prefix}-d1"), fleet_cfg(nodes, tenants, migs, 1));
    let parallel = run(
        &format!("{prefix}-d{par_domains}"),
        fleet_cfg(nodes, tenants, migs, par_domains),
    );
    let rows = [serial, parallel];

    let mut t = Table::new(vec![
        "scenario",
        "nodes",
        "tenants",
        "domains",
        "committed",
        "failed",
        "fetched",
        "avoided",
        "saved",
        "digest",
    ]);
    for r in &rows {
        let rep = &r.report;
        t.row(vec![
            r.name.clone(),
            rep.nodes.to_string(),
            rep.tenants.to_string(),
            r.name[r.name.rfind("-d").unwrap() + 2..].to_string(),
            rep.committed().to_string(),
            rep.failed_back().to_string(),
            snapify_bench::bytes(rep.pool.bytes_fetched_remote),
            snapify_bench::bytes(rep.pool.bytes_avoided_remote),
            format!("{:.1}%", rep.warm_saved_fraction() * 100.0),
            format!("{:016x}", rep.digest()),
        ]);
    }
    t.print();
    println!();
    println!("shape checks: every planned migration commits, warm cross-node restores");
    println!("ship >=80% fewer bytes than cold, the observable digest is identical at");
    println!("every domain count, and a clean shutdown leaves the pool empty.");

    for r in &rows {
        let rep = &r.report;
        assert_eq!(
            rep.committed(),
            migs,
            "{}: every planned migration must commit: {:?}",
            r.name,
            rep.migrations
        );
        assert_eq!(rep.failed_back(), 0, "{}: no rollbacks expected", r.name);
        assert!(
            rep.warm_saved_fraction() > 0.8,
            "{}: warm migration must ship >=80% fewer bytes than cold \
             (saved {:.3}, pool {:?})",
            r.name,
            rep.warm_saved_fraction(),
            rep.pool
        );
        assert_eq!(rep.pool_live_manifests, 0, "{}: leaked manifests", r.name);
        assert_eq!(rep.pool_live_chunks, 0, "{}: leaked chunks", r.name);
    }
    assert_eq!(
        rows[0].report.digest(),
        rows[1].report.digest(),
        "fleet digest must be byte-identical across domain counts"
    );

    dump_json("BENCH_cluster.json", &rows, quick);
}

fn dump_json(path: &str, rows: &[Row], quick: bool) {
    let mut out = String::from("{\n  \"benches\": [");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rep = &r.report;
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"nodes\": {}, \"tenants\": {}, \
             \"committed\": {}, \"failed\": {}, \"bytes_fetched_remote\": {}, \
             \"bytes_avoided_remote\": {}, \"saved_fraction\": {:.4}, \
             \"digest\": {}, \"virtual_ns\": {}}}",
            r.name,
            rep.nodes,
            rep.tenants,
            rep.committed(),
            rep.failed_back(),
            rep.pool.bytes_fetched_remote,
            rep.pool.bytes_avoided_remote,
            rep.warm_saved_fraction(),
            rep.digest(),
            rep.virtual_ns,
        ));
    }
    out.push_str(&format!("\n  ],\n  \"quick\": {quick}\n}}\n"));
    match std::fs::write(path, out) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
