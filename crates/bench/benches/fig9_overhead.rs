//! **Fig 9** — runtime overhead of the Snapify modifications to COI on
//! the eight OpenMP offload benchmarks: each benchmark runs once on stock
//! MPSS and once with Snapify's hooks (drain locks, blocking pipeline
//! sends), with no snapshot taken.
//!
//! Paper shape targets: average overhead ≈1.5%, worst <5% (MD, whose
//! offload regions are the most frequent).
//!
//! (The paper repeats each run 20×; the simulation is deterministic, so a
//! single run per configuration is exact.)

use coi_sim::{CoiConfig, FunctionRegistry};
use phi_platform::PlatformParams;
use simkernel::{obs, Kernel};
use snapify::SnapifyWorld;
use snapify_bench::{header, secs, Table};
use workloads::{register_suite, suite, WorkloadRun, WorkloadSpec};

fn run_once(spec: WorkloadSpec, config: CoiConfig) -> simkernel::SimDuration {
    Kernel::run_root(move || {
        let registry = FunctionRegistry::new();
        register_suite(&registry, std::slice::from_ref(&spec));
        let world = SnapifyWorld::boot_with(PlatformParams::default(), config, registry);
        let run = WorkloadRun::launch(world.coi(), &spec, 0).unwrap();
        let result = run.run_to_completion().unwrap();
        assert!(result.verified, "{} failed verification", spec.name);
        run.destroy().unwrap();
        result.runtime
    })
}

fn main() {
    let params = PlatformParams::default();
    header(
        "Fig 9: runtime overhead of Snapify support (normal execution, no snapshot)",
        &params,
    );
    let mut table = Table::new(vec![
        "benchmark",
        "stock MPSS (s)",
        "with Snapify (s)",
        "overhead (%)",
    ]);
    let mut overheads = Vec::new();
    let mut rows = Vec::new();
    // Record the Snapify-enabled runs so the dumped artifact carries the
    // per-phase/per-transport breakdown alongside the overhead table.
    obs::reset();
    obs::enable();
    for spec in suite() {
        obs::disable();
        let stock = run_once(spec.clone(), CoiConfig::stock());
        obs::enable();
        let snap = run_once(spec.clone(), CoiConfig::default());
        let overhead = (snap.as_secs_f64() - stock.as_secs_f64()) / stock.as_secs_f64() * 100.0;
        overheads.push((spec.name, overhead));
        rows.push((spec.name, stock.as_nanos(), snap.as_nanos(), overhead));
        table.row(vec![
            spec.name.to_string(),
            secs(stock),
            secs(snap),
            format!("{overhead:.2}"),
        ]);
    }
    obs::disable();
    table.print();
    dump_json("BENCH_fig9.json", &rows);
    let avg: f64 = overheads.iter().map(|(_, o)| o).sum::<f64>() / overheads.len() as f64;
    let (worst_name, worst) = overheads
        .iter()
        .cloned()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    println!();
    println!("average overhead: {avg:.2}%   worst: {worst:.2}% ({worst_name})");
    println!("shape checks: average ~1.5%, worst <5% (MD in the paper).");
}

/// Dump the overhead table plus the recorded per-phase/metrics summary
/// of the Snapify-enabled runs as one JSON artifact.
fn dump_json(path: &str, rows: &[(&str, u64, u64, f64)]) {
    let mut out = String::from("{\n  \"benchmarks\": [");
    for (i, (name, stock_ns, snap_ns, overhead)) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{name}\", \"stock_ns\": {stock_ns}, \
             \"snapify_ns\": {snap_ns}, \"overhead_pct\": {overhead:.4}}}"
        ));
    }
    out.push_str("\n  ],\n  \"summary\": ");
    // summary_json() is itself a JSON object; indent it to nest cleanly.
    let summary = obs::summary_json();
    out.push_str(&summary.trim_end().replace('\n', "\n  "));
    out.push_str("\n}\n");
    match std::fs::write(path, out) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
