//! **Fig 10 (d)–(f)** — process migration and swapping of the OpenMP
//! offload benchmarks.
//!
//! Paper shape targets: migration 4.9 s (MC) – 31.6 s (SS), strongly
//! correlated with local store + snapshot size; swap-out 2.1–11.8 s;
//! swap-in 2–14.8 s; capture+save (phi→host) faster than read+restore
//! (host→phi).

use coi_sim::FunctionRegistry;
use phi_platform::PlatformParams;
use simkernel::Kernel;
use snapify::{
    snapify_capture, snapify_pause, snapify_swapin, snapify_wait, SnapifyT, SnapifyWorld,
};
use snapify_bench::{bytes, header, secs, Table};
use workloads::{register_suite, suite, WorkloadRun, WorkloadSpec};

struct Row {
    name: &'static str,
    pause: simkernel::SimDuration,
    capture: simkernel::SimDuration,
    swap_out: simkernel::SimDuration,
    swap_in: simkernel::SimDuration,
    migration: simkernel::SimDuration,
    moved_bytes: u64,
}

fn run_one(spec: WorkloadSpec) -> Row {
    Kernel::run_root(move || {
        let registry = FunctionRegistry::new();
        register_suite(&registry, std::slice::from_ref(&spec));
        let world = SnapifyWorld::boot(registry);
        let run = WorkloadRun::launch(world.coi(), &spec, 0).unwrap();
        let handle = run.handle().clone();
        let host_proc = run.host_proc().clone();
        let run = std::sync::Arc::new(run);

        let driver = {
            let r = std::sync::Arc::clone(&run);
            host_proc.spawn_thread("driver", move || r.run_to_completion())
        };
        simkernel::sleep(simkernel::time::ms(300));

        // Swap-out with a phase breakdown (Fig 6(a) body, timed).
        let snapshot = SnapifyT::new(&handle, format!("/snap/swap/{}", spec.name));
        let t0 = simkernel::now();
        snapify_pause(&snapshot).unwrap();
        let t_pause = simkernel::now();
        snapify_capture(&snapshot, true).unwrap();
        let dev_bytes = snapify_wait(&snapshot).unwrap();
        let t_out = simkernel::now();

        // Swap-in on the other coprocessor (the migration target).
        snapify_swapin(&snapshot, 1).unwrap();
        let t_in = simkernel::now();

        // The migrated application completes and verifies.
        let result = driver.join().unwrap();
        assert!(result.verified, "{} failed after migration", spec.name);
        assert_eq!(handle.device(), 1);
        run.destroy().unwrap();

        let local_store = spec.local_store_bytes();
        Row {
            name: spec.name,
            pause: t_pause - t0,
            capture: t_out - t_pause,
            swap_out: t_out - t0,
            swap_in: t_in - t_out,
            migration: t_in - t0,
            moved_bytes: dev_bytes + local_store,
        }
    })
}

fn main() {
    let params = PlatformParams::default();
    header(
        "Fig 10(d-f): migration and swapping of the OpenMP benchmarks",
        &params,
    );

    let rows: Vec<Row> = suite().into_iter().map(run_one).collect();

    println!("Fig 10(e): swap-out (s)   Fig 10(f): swap-in (s)   Fig 10(d): migration (s)");
    let mut t = Table::new(vec![
        "benchmark",
        "pause",
        "capture",
        "swap-out",
        "swap-in",
        "migration",
        "snapshot+store",
    ]);
    for r in &rows {
        t.row(vec![
            r.name.to_string(),
            secs(r.pause),
            secs(r.capture),
            secs(r.swap_out),
            secs(r.swap_in),
            secs(r.migration),
            bytes(r.moved_bytes),
        ]);
    }
    t.print();
    println!();
    println!("shape checks: migration 4.9 s (MC) - 31.6 s (SS) in the paper, correlated with");
    println!("snapshot+store size; swap-in slower than swap-out (host->phi reads are slower);");
    println!("SS/SG pause >> capture (local store saved during pause).");
}
