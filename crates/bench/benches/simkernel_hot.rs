//! **simkernel_hot** — wall-clock throughput of the simulation kernel's
//! dispatch hot path. Unlike the paper benches (which report *virtual*
//! time), every number here is real seconds on the host: the simulator's
//! events/sec caps how large a simulation the test suite and the other
//! benches can afford, so this harness tracks the repo's wall-clock perf
//! trajectory across PRs.
//!
//! Scenarios:
//!
//! * `ping_pong_64` — 32 thread pairs (64 simulated threads) exchanging
//!   messages over unbounded channels; the canonical context-hand-off
//!   microbench (one block + one wake per message).
//! * `mutex_convoy_64` — 64 threads hammering one `SimMutex`; measures
//!   blocking acquire + FIFO hand-off.
//! * `timer_churn_64` — 64 threads sleeping staggered durations;
//!   measures the timed run-queue path (`block_until`).
//! * `spawn_join_1000` — spawn/join of 1000 simulated threads (each a
//!   real OS thread); measures thread-table and startup costs.
//! * `e2e_checkpoint` — a full Snapify checkpoint of a JAC offload run,
//!   the macro number everything else serves.
//!
//! Pass `--quick` (or set `BENCH_QUICK=1`) for a fast smoke run (CI).
//! Dumps `BENCH_simkernel.json` next to the other `BENCH_*.json`
//! artifacts.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use coi_sim::FunctionRegistry;
use simkernel::time::{ms, us};
use simkernel::{Kernel, Semaphore, SimChannel, SimMutex};
use snapify::{checkpoint_application, SnapifyWorld};
use workloads::{by_name, register_suite, WorkloadRun};

/// One measured scenario: `events` simulation events dispatched in
/// `secs` wall-clock seconds.
struct Row {
    name: &'static str,
    events: u64,
    secs: f64,
}

impl Row {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.secs
    }
}

/// Run `f` (which returns the number of events it dispatched) a few
/// times and keep the best-throughput batch.
fn measure(name: &'static str, warmups: u32, batches: u32, mut f: impl FnMut() -> u64) -> Row {
    for _ in 0..warmups {
        black_box(f());
    }
    let mut best = Row {
        name,
        events: 0,
        secs: f64::INFINITY,
    };
    for _ in 0..batches {
        let t0 = Instant::now();
        let events = f();
        let secs = t0.elapsed().as_secs_f64();
        if events as f64 / secs > best.events as f64 / best.secs.min(1e18) || best.events == 0 {
            best = Row { name, events, secs };
        }
    }
    println!(
        "{:<28} {:>12} events {:>9.3} ms {:>12.0} events/sec",
        best.name,
        best.events,
        best.secs * 1e3,
        best.events_per_sec()
    );
    best
}

/// 32 client/server pairs; each round trip is two messages, i.e. two
/// block/wake hand-offs. Events = messages delivered.
fn ping_pong_64(rounds: u64) -> u64 {
    Kernel::run_root(move || {
        let mut handles = Vec::new();
        for p in 0..32u32 {
            let req: SimChannel<u64> = SimChannel::unbounded("req");
            let rsp: SimChannel<u64> = SimChannel::unbounded("rsp");
            let (req2, rsp2) = (req.clone(), rsp.clone());
            simkernel::spawn(format!("srv{p}"), move || {
                while let Ok(v) = req2.recv() {
                    rsp2.send(v).unwrap();
                }
            });
            handles.push(simkernel::spawn(format!("cli{p}"), move || {
                for i in 0..rounds {
                    req.send(i).unwrap();
                    black_box(rsp.recv().unwrap());
                }
                req.close();
            }));
        }
        for h in handles {
            h.join();
        }
    });
    32 * rounds * 2
}

/// 64 threads contending one mutex. Events = acquisitions.
fn mutex_convoy_64(iters: u64) -> u64 {
    Kernel::run_root(move || {
        let m = Arc::new(SimMutex::new("convoy", 0u64));
        let gate = Semaphore::new("gate", 0);
        let mut handles = Vec::new();
        for t in 0..64u32 {
            let m = Arc::clone(&m);
            let gate = gate.clone();
            handles.push(simkernel::spawn(format!("w{t}"), move || {
                gate.wait();
                for _ in 0..iters {
                    let mut g = m.lock();
                    *g += 1;
                    // Keep the convoy formed: yield while holding nothing.
                    drop(g);
                    simkernel::yield_now();
                }
            }));
        }
        // Release all 64 at once so the lock is always contended.
        for _ in 0..64 {
            gate.post();
        }
        for h in handles {
            h.join();
        }
        assert_eq!(*m.lock(), 64 * iters);
    });
    64 * iters
}

/// 64 threads sleeping staggered durations. Events = timed wake-ups.
fn timer_churn_64(iters: u64) -> u64 {
    Kernel::run_root(move || {
        let mut handles = Vec::new();
        for t in 0..64u64 {
            handles.push(simkernel::spawn(format!("t{t}"), move || {
                for i in 0..iters {
                    simkernel::sleep(us(1 + (t * 13 + i * 7) % 97));
                }
            }));
        }
        for h in handles {
            h.join();
        }
    });
    64 * iters
}

/// Spawn and join 1000 threads. Events = spawns + exits.
fn spawn_join_1000() -> u64 {
    Kernel::run_root(|| {
        let mut handles = Vec::new();
        for t in 0..1000u64 {
            handles.push(simkernel::spawn(format!("s{t}"), move || {
                simkernel::sleep(us(t % 11));
                t
            }));
        }
        let sum: u64 = handles.into_iter().map(|h| h.join()).sum();
        assert_eq!(sum, 999 * 1000 / 2);
    });
    2000
}

/// One full checkpoint of a running JAC offload application — the macro
/// workload the microbenches exist to speed up. Events are not counted
/// here; the row reports runs/sec (events = 1 per run).
fn e2e_checkpoint() -> u64 {
    Kernel::run_root(|| {
        let spec = by_name("JAC").unwrap().scaled(64, 20);
        let registry = FunctionRegistry::new();
        register_suite(&registry, std::slice::from_ref(&spec));
        let world = SnapifyWorld::boot(registry);
        let run = Arc::new(WorkloadRun::launch(world.coi(), &spec, 0).unwrap());
        let handle = run.handle().clone();
        let host = run.host_proc().clone();
        let driver = {
            let r = Arc::clone(&run);
            host.spawn_thread("driver", move || r.run_to_completion())
        };
        simkernel::sleep(ms(17));
        checkpoint_application(&world, &handle, &run.host_state(), "/snap/hot").unwrap();
        assert!(driver.join().unwrap().verified);
        run.destroy().unwrap();
    });
    1
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
    let (warmups, batches) = if quick { (1, 2) } else { (2, 5) };
    let pp_rounds: u64 = if quick { 200 } else { 2000 };
    let mx_iters: u64 = if quick { 50 } else { 400 };
    let tm_iters: u64 = if quick { 50 } else { 400 };

    println!();
    println!(
        "simkernel hot-path wall-clock benchmarks{}",
        if quick { " (quick)" } else { "" }
    );
    println!("{}", "-".repeat(70));

    let rows = vec![
        measure("ping_pong_64", warmups, batches, || ping_pong_64(pp_rounds)),
        measure("mutex_convoy_64", warmups, batches, || {
            mutex_convoy_64(mx_iters)
        }),
        measure("timer_churn_64", warmups, batches, || {
            timer_churn_64(tm_iters)
        }),
        measure("spawn_join_1000", warmups, batches, spawn_join_1000),
        measure(
            "e2e_checkpoint",
            if quick { 0 } else { 1 },
            batches.min(3),
            e2e_checkpoint,
        ),
    ];

    dump_json("BENCH_simkernel.json", &rows, quick);
}

fn dump_json(path: &str, rows: &[Row], quick: bool) {
    let mut out = String::from("{\n  \"benches\": [");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"events\": {}, \"wall_secs\": {:.6}, \
             \"events_per_sec\": {:.1}}}",
            r.name,
            r.events,
            r.secs,
            r.events_per_sec()
        ));
    }
    out.push_str(&format!("\n  ],\n  \"quick\": {quick}\n}}\n"));
    match std::fs::write(path, out) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
