//! **Table 4** — BLCR checkpoint and restart of a *native* Xeon Phi
//! application (a `malloc` + 240-thread OpenMP loop micro-benchmark),
//! comparing snapshot storage methods: Local (the card's RAM fs), plain
//! NFS, NFS buffered in kernel, NFS buffered in user space, Snapify-IO.
//!
//! Paper shape targets: Local is fastest but **impossible at 4 GB**
//! (snapshot + process exceed the 8 GB card); Snapify-IO beats plain NFS
//! by 1.4× at 1 MB growing to ~5.9× at 4 GB; kernel buffering boosts NFS
//! "to a large degree", user buffering less; buffering does not apply to
//! restart.

use blcr_sim::BlcrConfig;
use phi_platform::{Payload, PhiServer, PlatformParams, GB, MB};
use simkernel::Kernel;
use simproc::{PidAllocator, SimProcess, SnapshotStorage};
use snapify_bench::{header, Table};
use snapify_io::{LocalStorage, Nfs, NfsConfig, NfsMode, SnapifyIo};

const SIZES: &[(u64, &str)] = &[
    (MB, "1 MB"),
    (256 * MB, "256 MB"),
    (GB, "1 GB"),
    (4 * GB, "4 GB"),
];

const LABELS: [&str; 5] = ["Local", "NFS", "NFS-buf(k)", "NFS-buf(u)", "Snapify-IO"];

/// One (method, size) measurement: (checkpoint s, restart s); None where
/// infeasible (device out of memory).
fn measure(method_idx: usize, size: u64) -> (Option<f64>, Option<f64>) {
    Kernel::run_root(move || {
        let server = PhiServer::new(PlatformParams::default());
        let methods: Vec<Box<dyn SnapshotStorage>> = vec![
            Box::new(LocalStorage::new(&server)),
            Box::new(Nfs::new(&server, NfsConfig::default(), NfsMode::Plain)),
            Box::new(Nfs::new(
                &server,
                NfsConfig::default(),
                NfsMode::BufferedKernel,
            )),
            Box::new(Nfs::new(
                &server,
                NfsConfig::default(),
                NfsMode::BufferedUser,
            )),
            Box::new(SnapifyIo::new_default(&server)),
        ];
        let method = &methods[method_idx];
        let node = server.device(0).clone();
        let pids = PidAllocator::new();
        let blcr = BlcrConfig::default();

        // The native micro-benchmark: malloc(size) + OpenMP loop.
        let proc = SimProcess::new(pids.alloc(), "native-microbench", &node);
        proc.memory()
            .map_region("malloc", Payload::synthetic(size, size))
            .unwrap();
        node.parallel_compute(1e9, 240); // the loop is running when we snapshot

        let path = "/ckpt/native";
        let digest = proc.memory().digest();

        // Checkpoint.
        let t0 = simkernel::now();
        let ckpt = method.sink(node.id(), path).and_then(|mut sink| {
            blcr_sim::checkpoint(&blcr, &proc, b"loop", sink.as_mut())
                .map_err(|e| simproc::IoError::Other(e.to_string()))
        });
        let ckpt_time = match ckpt {
            Ok(_) => Some((simkernel::now() - t0).as_secs_f64()),
            Err(_) => None, // e.g. Local at 4 GB: card out of memory
        };

        // Restart (the original process is gone; its memory is free).
        let restart_time = if ckpt_time.is_some() {
            proc.exit();
            let t1 = simkernel::now();
            let restored = method
                .source(node.id(), path)
                .ok()
                .and_then(|mut src| blcr_sim::restart(&blcr, &node, &pids, src.as_mut()).ok());
            match restored {
                Some(r) => {
                    assert_eq!(r.proc.memory().digest(), digest, "restore corrupted image");
                    Some((simkernel::now() - t1).as_secs_f64())
                }
                None => None,
            }
        } else {
            None
        };
        (ckpt_time, restart_time)
    })
}

fn main() {
    let params = PlatformParams::default();
    header(
        "Table 4: BLCR checkpoint/restart of a native Phi app by storage method",
        &params,
    );

    // Measure everything once.
    let mut results: Vec<Vec<(Option<f64>, Option<f64>)>> = Vec::new();
    for &(size, _) in SIZES {
        results.push((0..LABELS.len()).map(|m| measure(m, size)).collect());
    }

    for (phase, pick) in [("checkpoint", 0usize), ("restart", 1usize)] {
        let mut table = Table::new(vec![
            "malloc",
            "Local",
            "NFS",
            "NFS-buf(k)",
            "NFS-buf(u)",
            "Snapify-IO",
            "SIO vs NFS",
        ]);
        for (i, &(_, label)) in SIZES.iter().enumerate() {
            let get = |m: usize| -> Option<f64> {
                if pick == 0 {
                    results[i][m].0
                } else {
                    results[i][m].1
                }
            };
            let fmt = |v: Option<f64>| match v {
                Some(s) => format!("{s:.3}"),
                None => "OOM".to_string(),
            };
            let speedup = match (get(1), get(4)) {
                (Some(nfs), Some(sio)) => format!("{:.1}x", nfs / sio),
                _ => "-".to_string(),
            };
            table.row(vec![
                label.to_string(),
                fmt(get(0)),
                fmt(get(1)),
                fmt(get(2)),
                fmt(get(3)),
                fmt(get(4)),
                speedup,
            ]);
        }
        println!("BLCR {phase} time (s):");
        table.print();
        println!();
    }
    println!("shape checks: Local fastest but OOM at 4 GB; Snapify-IO 1.4x -> 5.9x over NFS");
    println!("(checkpoint), 4.4x-5.3x (restart); kernel buffering > user buffering > plain NFS.");
}
