//! Incremental O(dirty) warm capture: delta swap-out vs. the always-full
//! baseline on a lightly-touched tenant.
//!
//! The swap scheduler re-parks tenants that barely moved between
//! time-slices; with per-region dirty state the warm capture reads,
//! chunks and digests only the touched buffers while the store's region
//! ledger replays every clean region from the prior snapshot's chunks.
//! This harness measures, per tenant shape: the always-full warm park
//! (`incremental_rebase_every = 1`), the incremental warm park
//! (`incremental_rebase_every = 0`), the resulting virtual-time speedup,
//! and the fraction of the image that entered the hash pipeline.
//!
//! Pass `--quick` (or set `BENCH_QUICK=1`) for a fast smoke run (CI).
//! Dumps `BENCH_incremental.json` next to the other `BENCH_*.json`.

use coi_sim::{CoiConfig, DeviceBinary, FunctionRegistry};
use phi_platform::{Payload, PlatformParams, MB};
use simkernel::Kernel;
use snapify::{SnapifyWorld, SwapScheduler};
use snapify_bench::{bytes, header, secs, Table};
use snapstore::DedupConfig;

struct Row {
    name: String,
    full: simkernel::SimDuration,
    incremental: simkernel::SimDuration,
    dirty_bytes: u64,
    clean_bytes: u64,
    /// Dirty buffers out of total — ≤ 0.10 rows carry the O(dirty)
    /// shape assertions.
    dirty_fraction: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        if self.incremental.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.full.as_secs_f64() / self.incremental.as_secs_f64()
    }

    /// Fraction of the warm image that was read/chunked/digested.
    fn hashed_fraction(&self) -> f64 {
        let image = self.dirty_bytes + self.clean_bytes;
        if image == 0 {
            return 1.0;
        }
        self.dirty_bytes as f64 / image as f64
    }
}

fn registry() -> FunctionRegistry {
    let reg = FunctionRegistry::new();
    reg.register(
        DeviceBinary::new("tenant.so", MB, 32 * MB).simple_function("spin", |ctx| {
            ctx.compute(1e9, 60);
            Vec::new()
        }),
    );
    reg
}

/// One warm-park cycle: cold park, rotate back in, rewrite `dirty` of
/// the `bufs` buffers, park again. Returns the warm park's virtual
/// duration and its dirty/clean capture byte deltas.
fn warm_park(bufs: u64, buf_bytes: u64, dirty: u64, rebase_every: u32) -> (u64, u64, u64) {
    Kernel::run_root(move || {
        let world = SnapifyWorld::boot_dedup_with(
            PlatformParams::default(),
            CoiConfig::default(),
            registry(),
            DedupConfig {
                incremental_rebase_every: rebase_every,
                ..DedupConfig::default()
            },
        );
        let store = world.store().unwrap().clone();
        let sched = SwapScheduler::new(1, "/bench/incr").with_store(&store);
        let host = world.coi().create_host_process("t");
        let h = world.coi().create_process(&host, 0, "tenant.so").unwrap();
        let mut handles = Vec::new();
        for i in 0..bufs {
            let b = h.create_buffer(buf_bytes).unwrap();
            h.buffer_write(&b, Payload::synthetic(100 + i, buf_bytes))
                .unwrap();
            handles.push(b);
        }
        let id = sched.admit(&h, 0);
        sched.park(id).unwrap();
        sched.rotate().unwrap();
        for (i, b) in handles.iter().take(dirty as usize).enumerate() {
            h.buffer_write(b, Payload::synthetic(9000 + i as u64, buf_bytes))
                .unwrap();
        }
        let s0 = store.stats();
        let t0 = simkernel::now();
        sched.park(id).unwrap();
        let warm_ns = (simkernel::now() - t0).as_nanos();

        // Whatever the capture strategy, the tenant restores
        // bit-identically, dirty buffers included.
        sched.rotate().unwrap();
        for (i, b) in handles.iter().enumerate() {
            let want = if (i as u64) < dirty {
                Payload::synthetic(9000 + i as u64, buf_bytes)
            } else {
                Payload::synthetic(100 + i as u64, buf_bytes)
            };
            assert_eq!(
                h.buffer_read(b).unwrap().digest(),
                want.digest(),
                "buffer {i} corrupted (rebase_every={rebase_every})"
            );
        }
        let s1 = store.stats();
        (
            warm_ns,
            s1.capture_dirty_bytes - s0.capture_dirty_bytes,
            s1.capture_clean_bytes - s0.capture_clean_bytes,
        )
    })
}

fn cycle(name: &str, bufs: u64, buf_bytes: u64, dirty: u64) -> Row {
    // rebase_every = 1 is the always-full baseline; 0 never rebases.
    let (full_ns, full_dirty, full_clean) = warm_park(bufs, buf_bytes, dirty, 1);
    assert_eq!(full_clean, 0, "{name}: the full baseline never reuses");
    assert!(full_dirty >= bufs * buf_bytes);
    let (inc_ns, inc_dirty, inc_clean) = warm_park(bufs, buf_bytes, dirty, 0);
    // Only the warm park's capture bytes count toward the hashed
    // fraction; the rotate after it restores, which adds none.
    Row {
        name: name.to_string(),
        full: simkernel::SimDuration::from_nanos(full_ns),
        incremental: simkernel::SimDuration::from_nanos(inc_ns),
        dirty_bytes: inc_dirty,
        clean_bytes: inc_clean,
        dirty_fraction: dirty as f64 / bufs as f64,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
    let params = PlatformParams::default();
    header(
        if quick {
            "Incremental warm capture: delta vs full swap-out (quick)"
        } else {
            "Incremental warm capture: delta vs full swap-out"
        },
        &params,
    );

    // (name, buffers, buffer bytes, dirty buffers between parks)
    let shapes: &[(&str, u64, u64, u64)] = if quick {
        &[("tenant-5G-20x256M-1dirty", 20, 256 * MB, 1)]
    } else {
        &[
            ("tenant-5G-20x256M-1dirty", 20, 256 * MB, 1),
            ("tenant-5G-40x128M-8dirty", 40, 128 * MB, 8),
            ("tenant-5G-20x256M-5dirty", 20, 256 * MB, 5),
        ]
    };
    let rows: Vec<Row> = shapes
        .iter()
        .map(|(n, b, s, d)| cycle(n, *b, *s, *d))
        .collect();

    let mut t = Table::new(vec![
        "tenant",
        "full warm park",
        "incr warm park",
        "speedup",
        "hashed",
        "replayed",
        "hashed frac",
    ]);
    for r in &rows {
        t.row(vec![
            r.name.clone(),
            secs(r.full),
            secs(r.incremental),
            format!("{:.2}x", r.speedup()),
            bytes(r.dirty_bytes),
            bytes(r.clean_bytes),
            format!("{:.1}%", r.hashed_fraction() * 100.0),
        ]);
    }
    t.print();
    println!();
    println!("shape checks: a tenant with <=10% dirty buffers re-parks >=5x faster than");
    println!("the always-full baseline and hashes <=20% of its image bytes.");

    for r in &rows {
        assert!(
            r.clean_bytes > 0,
            "{}: incremental capture never replayed a clean region",
            r.name
        );
        if r.dirty_fraction <= 0.10 {
            assert!(
                r.speedup() >= 5.0,
                "{}: O(dirty) warm park must be >=5x faster (got {:.2}x)",
                r.name,
                r.speedup()
            );
            assert!(
                r.hashed_fraction() <= 0.20,
                "{}: warm park must hash <=20% of the image (got {:.1}%)",
                r.name,
                r.hashed_fraction() * 100.0
            );
        }
    }

    dump_json("BENCH_incremental.json", &rows, quick);
}

fn dump_json(path: &str, rows: &[Row], quick: bool) {
    let mut out = String::from("{\n  \"benches\": [");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"full_secs\": {:.6}, \"incremental_secs\": {:.6}, \
             \"dirty_bytes\": {}, \"clean_bytes\": {}, \"speedup\": {:.4}, \
             \"hashed_fraction\": {:.4}}}",
            r.name,
            r.full.as_secs_f64(),
            r.incremental.as_secs_f64(),
            r.dirty_bytes,
            r.clean_bytes,
            r.speedup(),
            r.hashed_fraction()
        ));
    }
    out.push_str(&format!("\n  ],\n  \"quick\": {quick}\n}}\n"));
    match std::fs::write(path, out) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
