//! Restore fast path: cold vs. warm swap-in, and restore pipeline gain.
//!
//! The mirror image of `dedup.rs`: that harness shows the second
//! swap-*out* of an unchanged tenant is almost free; this one shows the
//! swap-*in* is too. Chunks that survived on the host since the last
//! swap-out are replayed from the warm cache instead of re-shipped, and
//! the cold chunks that do ship are prefetched one chunk ahead of the
//! BLCR stream replay. Per tenant size: cold swap-in (cache disabled),
//! warm swap-in of the unchanged tenant, byte reduction from the
//! store's restore counters, and the pipelined-vs-serial restore gain
//! on a cache-disabled store.
//!
//! Pass `--quick` (or set `BENCH_QUICK=1`) for a fast smoke run (CI).
//! Dumps `BENCH_swapin.json` next to the other `BENCH_*.json`.

use coi_sim::{DeviceBinary, FunctionRegistry};
use phi_platform::{NodeId, Payload, PhiServer, PlatformParams, GB, MB};
use simkernel::Kernel;
use simproc::SnapshotStorage;
use snapify::{SnapifyWorld, SwapScheduler};
use snapify_bench::{bytes, header, secs, Table};
use snapify_io::SnapifyIo;
use snapstore::{Dedup, DedupConfig};

struct Row {
    name: String,
    cold: simkernel::SimDuration,
    warm: simkernel::SimDuration,
    cold_fetched: u64,
    warm_fetched: u64,
    warm_avoided: u64,
    pipelined: simkernel::SimDuration,
    serial: simkernel::SimDuration,
}

impl Row {
    /// Fraction of the cold fetch the warm swap-in avoided shipping.
    fn byte_reduction(&self) -> f64 {
        if self.cold_fetched == 0 {
            return 0.0;
        }
        1.0 - self.warm_fetched as f64 / self.cold_fetched as f64
    }

    fn speedup(&self) -> f64 {
        if self.warm.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.cold.as_secs_f64() / self.warm.as_secs_f64()
    }

    fn overlap_gain(&self) -> f64 {
        if self.pipelined.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.serial.as_secs_f64() / self.pipelined.as_secs_f64()
    }
}

fn registry() -> FunctionRegistry {
    let reg = FunctionRegistry::new();
    reg.register(
        DeviceBinary::new("tenant.so", MB, 32 * MB).simple_function("spin", |ctx| {
            ctx.compute(1e9, 60);
            Vec::new()
        }),
    );
    reg
}

/// Park one tenant and time the rotation that brings it back, with the
/// warm restore cache sized `cache_bytes` (0 = cold baseline). Returns
/// (swap-in time, restore bytes fetched, restore bytes avoided).
fn swapin_once(buffer_bytes: u64, cache_bytes: u64) -> (simkernel::SimDuration, u64, u64) {
    Kernel::run_root(move || {
        let world = SnapifyWorld::boot_dedup_with(
            PlatformParams::default(),
            coi_sim::CoiConfig::default(),
            registry(),
            DedupConfig {
                restore_cache_bytes: cache_bytes,
                ..DedupConfig::default()
            },
        );
        let store = world.store().unwrap().clone();
        let sched = SwapScheduler::new(1, "/swap/bench-in").with_store(&store);
        let host = world.coi().create_host_process("t");
        let h = world.coi().create_process(&host, 0, "tenant.so").unwrap();
        let buf = h.create_buffer(buffer_bytes).unwrap();
        h.buffer_write(&buf, Payload::synthetic(42, buffer_bytes))
            .unwrap();
        let id = sched.admit(&h, 0);
        sched.park(id).unwrap();

        let before = store.stats();
        let t0 = simkernel::now();
        sched.rotate().unwrap();
        let elapsed = simkernel::now() - t0;
        let after = store.stats();

        assert!(sched.is_resident(id));
        assert_eq!(
            h.buffer_read(&buf).unwrap().digest(),
            Payload::synthetic(42, buffer_bytes).digest(),
            "restore fast path corrupted the tenant"
        );
        (
            elapsed,
            after.restore_bytes_fetched - before.restore_bytes_fetched,
            after.restore_bytes_avoided - before.restore_bytes_avoided,
        )
    })
}

/// Restore-pipeline overlap isolated from the swap machinery: the same
/// image read back through a cache-disabled store with the prefetcher
/// on vs. off (cold fetch of chunk k+1 overlapping replay of chunk k).
fn restore_pipeline_compare(
    server: &PhiServer,
    size: u64,
) -> (simkernel::SimDuration, simkernel::SimDuration) {
    let time_one = |pipelined: bool, path: &str| {
        let backend = std::sync::Arc::new(SnapifyIo::new_default(server));
        let store = Dedup::new(
            server,
            backend,
            DedupConfig {
                restore_cache_bytes: 0,
                restore_pipelined: pipelined,
                ..DedupConfig::default()
            },
        );
        let data = Payload::synthetic(7, size);
        let mut sink = store.sink(NodeId::device(0), path).unwrap();
        for chunk in data.chunks(8 * MB) {
            sink.write(chunk).unwrap();
        }
        sink.close().unwrap();
        let t0 = simkernel::now();
        let mut src = store.source(NodeId::device(0), path).unwrap();
        let mut total = 0;
        while let Some(chunk) = src.read(8 * MB).unwrap() {
            total += chunk.len();
        }
        assert_eq!(total, data.len(), "restore stream truncated");
        simkernel::now() - t0
    };
    (
        time_one(true, "/bench/restore-piped"),
        time_one(false, "/bench/restore-serial"),
    )
}

fn swapin_row(name: &str, buffer_bytes: u64) -> Row {
    let (cold, cold_fetched, _) = swapin_once(buffer_bytes, 0);
    let (warm, warm_fetched, warm_avoided) = swapin_once(buffer_bytes, 4 << 30);
    let (pipelined, serial) = Kernel::run_root(move || {
        let server = PhiServer::new(PlatformParams::default());
        restore_pipeline_compare(&server, buffer_bytes)
    });
    Row {
        name: name.to_string(),
        cold,
        warm,
        cold_fetched,
        warm_fetched,
        warm_avoided,
        pipelined,
        serial,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
    let params = PlatformParams::default();
    header(
        if quick {
            "Restore fast path: cold vs warm swap-in (quick)"
        } else {
            "Restore fast path: cold vs warm swap-in"
        },
        &params,
    );

    let sizes: &[(&str, u64)] = if quick {
        &[("tenant-512M", 512 * MB)]
    } else {
        &[
            ("tenant-512M", 512 * MB),
            ("tenant-1G", GB),
            ("tenant-2G", 2 * GB),
        ]
    };
    let rows: Vec<Row> = sizes.iter().map(|(n, s)| swapin_row(n, *s)).collect();

    let mut t = Table::new(vec![
        "tenant",
        "cold in",
        "warm in",
        "cold fetched",
        "warm fetched",
        "bytes avoided",
        "reduction",
        "speedup",
        "overlap gain",
    ]);
    for r in &rows {
        t.row(vec![
            r.name.clone(),
            secs(r.cold),
            secs(r.warm),
            bytes(r.cold_fetched),
            bytes(r.warm_fetched),
            bytes(r.warm_avoided),
            format!("{:.1}%", r.byte_reduction() * 100.0),
            format!("{:.2}x", r.speedup()),
            format!("{:.2}x", r.overlap_gain()),
        ]);
    }
    t.print();
    println!();
    println!("shape checks: warm swap-in ships >=80% fewer bytes and runs >=2x faster than");
    println!("cold; pipelined restore beats serial (fetch of chunk k+1 overlaps replay of k).");

    for r in &rows {
        assert!(
            r.byte_reduction() >= 0.8,
            "{}: warm swap-in must ship >=80% fewer bytes (got {:.1}%)",
            r.name,
            r.byte_reduction() * 100.0
        );
        assert!(
            r.speedup() >= 2.0,
            "{}: warm swap-in must be >=2x faster (got {:.2}x)",
            r.name,
            r.speedup()
        );
        assert!(
            r.overlap_gain() >= 1.0,
            "{}: pipelined restore must not lose to serial (got {:.2}x)",
            r.name,
            r.overlap_gain()
        );
    }

    dump_json("BENCH_swapin.json", &rows, quick);
}

fn dump_json(path: &str, rows: &[Row], quick: bool) {
    let mut out = String::from("{\n  \"benches\": [");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"cold_secs\": {:.6}, \"warm_secs\": {:.6}, \
             \"cold_fetched_bytes\": {}, \"warm_fetched_bytes\": {}, \
             \"warm_avoided_bytes\": {}, \"byte_reduction\": {:.4}, \
             \"speedup\": {:.4}, \"pipelined_secs\": {:.6}, \"serial_secs\": {:.6}, \
             \"overlap_gain\": {:.4}}}",
            r.name,
            r.cold.as_secs_f64(),
            r.warm.as_secs_f64(),
            r.cold_fetched,
            r.warm_fetched,
            r.warm_avoided,
            r.byte_reduction(),
            r.speedup(),
            r.pipelined.as_secs_f64(),
            r.serial.as_secs_f64(),
            r.overlap_gain()
        ));
    }
    out.push_str(&format!("\n  ],\n  \"quick\": {quick}\n}}\n"));
    match std::fs::write(path, out) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
