//! FaaS-style multi-tenant serving: open-loop Zipf traffic over a
//! swapped-out tenant population, per-policy cold vs. warm
//! time-to-first-compute.
//!
//! Two scenarios per eviction policy:
//!
//! * `zipf1k` — 1000 tenants with Zipf 1.1 popularity skew behind 8
//!   coprocessors, one row per eviction policy. The paper's §6
//!   time-sharing pitch at population scale: most requests hit the
//!   skewed head and serve warm, the tail demand-swaps in. Both
//!   committed assertions live here: warm p99 time-to-first-compute
//!   beats cold p99 by ≥ 2× for every policy, and popularity-aware
//!   eviction beats LRU on overall p99 (it keeps the skewed head
//!   resident, so fewer requests pay a demand swap-in).
//! * `overload` — a uniform (no-skew) burst far beyond device
//!   throughput with a 2-deep admission limit: the limiter must shed
//!   load instead of letting the cold queue grow without bound.
//!
//! Quick mode (`--quick` / `BENCH_QUICK=1`) runs a shorter `zipf1k`
//! schedule under distinct row names (`zipf1k-quick-*`), so quick and
//! full rows coexist in the committed baseline and `perf_gate` is never
//! vacuous in either mode. Dumps `BENCH_serving.json`.

use phi_platform::PlatformParams;
use serving::{run_scenario, EvictionPolicy, ServingConfig, ServingReport, TrafficConfig};
use simkernel::Kernel;
use snapify_bench::{header, Table};

struct Row {
    name: String,
    report: ServingReport,
}

impl Row {
    /// Cold p99 over warm p99: how much a demand swap-in costs relative
    /// to hitting a resident tenant.
    fn warm_speedup_p99(&self) -> f64 {
        if self.report.warm.p99_ns == 0 {
            return 0.0;
        }
        self.report.cold.p99_ns as f64 / self.report.warm.p99_ns as f64
    }
}

/// The population-scale scenario: 1000 tenants, Zipf 1.1, 8 devices.
fn zipf1k(policy: EvictionPolicy, requests: usize) -> ServingConfig {
    ServingConfig {
        devices: 8,
        swap_workers: 4,
        policy,
        traffic: TrafficConfig {
            tenants: 1000,
            zipf_s: 1.1,
            rate_per_sec: 20.0,
            requests,
            ..TrafficConfig::default()
        },
        ..ServingConfig::default()
    }
}

/// The admission-policy scenario: uniform overload against a 2-deep
/// cold backlog limit.
fn overload() -> ServingConfig {
    ServingConfig {
        devices: 2,
        swap_workers: 1,
        policy: EvictionPolicy::Lru,
        admission_limit: Some(2),
        traffic: TrafficConfig {
            tenants: 16,
            zipf_s: 0.0,
            rate_per_sec: 100.0,
            requests: 200,
            ..TrafficConfig::default()
        },
        ..ServingConfig::default()
    }
}

fn run(name: &str, cfg: ServingConfig) -> Row {
    let report = Kernel::run_root(move || run_scenario(&cfg));
    assert_eq!(
        report.cold.count + report.warm.count,
        report.admitted,
        "{name}: every admitted request must reach first-compute"
    );
    assert!(
        report.max_resident <= report.devices,
        "{name}: residency exceeded device capacity"
    );
    Row {
        name: name.to_string(),
        report,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
    let params = PlatformParams::default();
    header(
        if quick {
            "FaaS-style serving: cold vs warm time-to-first-compute (quick)"
        } else {
            "FaaS-style serving: cold vs warm time-to-first-compute"
        },
        &params,
    );

    let (zipf_prefix, zipf_requests) = if quick {
        ("zipf1k-quick", 600)
    } else {
        ("zipf1k", 2000)
    };
    let mut rows = Vec::new();
    for policy in EvictionPolicy::ALL {
        rows.push(run(
            &format!("{zipf_prefix}-{}", policy.label()),
            zipf1k(policy, zipf_requests),
        ));
    }
    rows.push(run("overload-limit2", overload()));

    let ms = |ns: u64| format!("{:.2}", ns as f64 / 1e6);
    let mut t = Table::new(vec![
        "scenario",
        "cold n",
        "cold p50 ms",
        "cold p99 ms",
        "warm n",
        "warm p50 ms",
        "warm p99 ms",
        "overall p99 ms",
        "speedup p99",
        "breaches",
    ]);
    for r in &rows {
        let rep = &r.report;
        t.row(vec![
            r.name.clone(),
            rep.cold.count.to_string(),
            ms(rep.cold.p50_ns),
            ms(rep.cold.p99_ns),
            rep.warm.count.to_string(),
            ms(rep.warm.p50_ns),
            ms(rep.warm.p99_ns),
            ms(rep.overall.p99_ns),
            format!("{:.1}x", r.warm_speedup_p99()),
            rep.breaches.len().to_string(),
        ]);
    }
    t.print();
    println!();
    println!("shape checks: at 1k tenants with Zipf skew, warm p99 time-to-first-compute");
    println!("beats cold p99 by >=2x for every policy, popularity-aware eviction beats");
    println!("LRU on overall p99, and uniform overload trips the admission limiter.");

    for r in rows.iter().filter(|r| r.name.starts_with(zipf_prefix)) {
        assert!(
            r.warm_speedup_p99() >= 2.0,
            "{}: warm p99 must be >=2x better than cold (got {:.2}x)\n{}",
            r.name,
            r.warm_speedup_p99(),
            r.report.summary()
        );
    }
    let p99_of = |name: String| {
        rows.iter()
            .find(|r| r.name == name)
            .map(|r| r.report.overall.p99_ns)
            .expect("zipf1k row present")
    };
    let lru = p99_of(format!("{zipf_prefix}-lru"));
    let pop = p99_of(format!("{zipf_prefix}-popularity"));
    assert!(
        pop < lru,
        "popularity-aware eviction must beat LRU on overall p99 under Zipf skew \
         (popularity {pop}ns vs lru {lru}ns)"
    );
    let shed = &rows.last().unwrap().report;
    assert!(
        shed.rejected > 0,
        "uniform overload must trip the admission limiter\n{}",
        shed.summary()
    );

    dump_json("BENCH_serving.json", &rows, quick);
}

fn dump_json(path: &str, rows: &[Row], quick: bool) {
    let mut out = String::from("{\n  \"benches\": [");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rep = &r.report;
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"policy\": \"{}\", \"requests\": {}, \
             \"admitted\": {}, \"cold_count\": {}, \"warm_count\": {}, \
             \"cold_p50_ns\": {}, \"cold_p99_ns\": {}, \"warm_p50_ns\": {}, \
             \"warm_p99_ns\": {}, \"overall_p99_ns\": {}, \"warm_speedup_p99\": {:.4}, \
             \"swaps\": {}, \"max_resident\": {}, \"restore_bytes_avoided\": {}, \
             \"slo_breaches\": {}}}",
            r.name,
            rep.policy,
            rep.requests,
            rep.admitted,
            rep.cold.count,
            rep.warm.count,
            rep.cold.p50_ns,
            rep.cold.p99_ns,
            rep.warm.p50_ns,
            rep.warm.p99_ns,
            rep.overall.p99_ns,
            r.warm_speedup_p99(),
            rep.swaps,
            rep.max_resident,
            rep.restore_bytes_avoided,
            rep.breaches.len(),
        ));
    }
    out.push_str(&format!("\n  ],\n  \"quick\": {quick}\n}}\n"));
    match std::fs::write(path, out) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
