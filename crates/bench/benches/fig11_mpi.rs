//! **Fig 11** — checkpoint and restart of the NAS multi-zone MPI
//! benchmarks (LU-MZ, SP-MZ, BT-MZ, class C) with 1, 2 and 4 ranks, one
//! rank (and one Xeon Phi) per cluster node.
//!
//! Paper shape targets: CR time decreases as ranks increase, because the
//! per-rank checkpoint size (Fig 11(c)) shrinks with the zone partition;
//! single checkpoints take seconds against multi-minute runtimes, so
//! frequent checkpointing is feasible.

use phi_platform::PlatformParams;
use simkernel::Kernel;
use snapify_bench::{bytes, header, Table};
use workloads::nas::{nas_suite, run_mz_cr_experiment};

fn main() {
    let params = PlatformParams::default();
    header(
        "Fig 11: coordinated checkpoint/restart of NAS-MZ (class C) over MPI ranks",
        &params,
    );

    let mut ckpt = Table::new(vec!["benchmark", "1 rank", "2 ranks", "4 ranks"]);
    let mut restart = Table::new(vec!["benchmark", "1 rank", "2 ranks", "4 ranks"]);
    let mut sizes = Table::new(vec!["benchmark", "1 rank", "2 ranks", "4 ranks"]);

    for mz in nas_suite() {
        let mut c = vec![mz.name.to_string()];
        let mut r = vec![mz.name.to_string()];
        let mut s = vec![mz.name.to_string()];
        for ranks in [1usize, 2, 4] {
            let mz2 = mz.clone();
            let result = Kernel::run_root(move || {
                // Two warm-up iterations are enough: checkpoint cost does
                // not depend on how long the solver has run.
                run_mz_cr_experiment(&mz2, ranks, 2).unwrap()
            });
            c.push(format!("{:.3}", result.checkpoint_time.as_secs_f64()));
            r.push(format!("{:.3}", result.restart_time.as_secs_f64()));
            s.push(bytes(result.per_rank_checkpoint_bytes));
        }
        ckpt.row(c);
        restart.row(r);
        sizes.row(s);
    }

    println!("Fig 11(a): coordinated checkpoint time (s)");
    ckpt.print();
    println!();
    println!("Fig 11(b): coordinated restart time (s)");
    restart.print();
    println!();
    println!("Fig 11(c): per-rank checkpoint size (host + device + local store)");
    sizes.print();
    println!();
    println!("shape checks: paper reports 4-14 s per checkpoint, decreasing with rank");
    println!("count as the per-rank snapshot shrinks; class-C runtimes are 2-3 minutes,");
    println!("so frequent checkpoints are practical.");
}
