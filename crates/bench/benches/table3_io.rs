//! **Table 3** — time to copy files between the host and the Xeon Phi:
//! Snapify-IO vs NFS vs scp, 1 MB – 1 GB, both directions.
//!
//! Paper shape targets: Snapify-IO wins everywhere except 1 MB (where NFS
//! wins by buffering); at 1 GB Snapify-IO is ≈6× NFS and ≈30× scp on
//! writes, ≈3× NFS and ≈22× scp on reads; Snapify-IO phi→host (write) is
//! faster than host→phi (read).

use phi_platform::{NodeId, Payload, PhiServer, PlatformParams, MB};
use simkernel::Kernel;
use simproc::SnapshotStorage;
use snapify_bench::{header, secs, Table};
use snapify_io::{Nfs, NfsConfig, NfsMode, Scp, ScpConfig, SnapifyIo};

const SIZES_MB: &[u64] = &[1, 4, 16, 64, 256, 1024];

fn time_write(method: &dyn SnapshotStorage, tag: u64, size: u64) -> simkernel::SimDuration {
    let t0 = simkernel::now();
    let mut sink = method.sink(NodeId::device(0), "/bench/t3").unwrap();
    for chunk in Payload::synthetic(tag, size).chunks(8 << 20) {
        sink.write(chunk).unwrap();
    }
    sink.close().unwrap();
    simkernel::now() - t0
}

fn time_read(method: &dyn SnapshotStorage, size: u64) -> simkernel::SimDuration {
    let t0 = simkernel::now();
    let mut src = method.source(NodeId::device(0), "/bench/t3").unwrap();
    let mut total = 0;
    while let Some(c) = src.read(8 << 20).unwrap() {
        total += c.len();
    }
    assert_eq!(total, size);
    simkernel::now() - t0
}

fn main() {
    let params = PlatformParams::default();
    header(
        "Table 3: file copy host<->phi — Snapify-IO vs NFS vs scp",
        &params,
    );

    let mut table = Table::new(vec![
        "size",
        "direction",
        "Snapify-IO (s)",
        "NFS (s)",
        "scp (s)",
        "vs NFS",
        "vs scp",
    ]);

    for &size_mb in SIZES_MB {
        let size = size_mb * MB;
        let results = Kernel::run_root(move || {
            let server = PhiServer::new(PlatformParams::default());
            let sio = SnapifyIo::new_default(&server);
            let nfs = Nfs::new(&server, NfsConfig::default(), NfsMode::Plain);
            let scp = Scp::new(&server, ScpConfig::default());
            let methods: [&dyn SnapshotStorage; 3] = [&sio, &nfs, &scp];
            let mut out = Vec::new();
            for (i, m) in methods.iter().enumerate() {
                let w = time_write(*m, i as u64 + 1, size);
                let r = time_read(*m, size);
                out.push((w, r));
            }
            out
        });
        for (dir, idx) in [("phi->host (write)", 0usize), ("host->phi (read)", 1usize)] {
            let pick = |i: usize| {
                if idx == 0 {
                    results[i].0
                } else {
                    results[i].1
                }
            };
            let (sio, nfs, scp) = (pick(0), pick(1), pick(2));
            table.row(vec![
                format!("{size_mb} MB"),
                dir.to_string(),
                secs(sio),
                secs(nfs),
                secs(scp),
                format!("{:.1}x", nfs.as_secs_f64() / sio.as_secs_f64()),
                format!("{:.1}x", scp.as_secs_f64() / sio.as_secs_f64()),
            ]);
        }
    }
    table.print();
    println!();
    println!("shape checks: NFS should win only at 1 MB; at 1 GB expect ~6x/30x (write), ~3x/22x (read).");
}
