//! Content-addressed store: cold vs. warm swap-out, dedup ratio, and
//! pipeline overlap gain.
//!
//! The swap scheduler (§5 Remark) re-ships a near-identical image every
//! time-slice; the dedup store makes the second shipment almost free.
//! This harness measures, per workload tenant: the cold swap-out (every
//! chunk novel), the warm swap-out of the unchanged tenant (manifest +
//! headers only), the resulting byte-level dedup ratio, and the
//! simulated-time gain from overlapping chunk digesting with chunk
//! shipping (pipelined vs. serial capture of the same image).
//!
//! Pass `--quick` (or set `BENCH_QUICK=1`) for a fast smoke run (CI).
//! Dumps `BENCH_dedup.json` next to the other `BENCH_*.json`.

use coi_sim::{DeviceBinary, FunctionRegistry};
use phi_platform::{NodeId, Payload, PhiServer, PlatformParams, GB, MB};
use simkernel::Kernel;
use simproc::SnapshotStorage;
use snapify::{SnapifyWorld, SwapScheduler};
use snapify_bench::{bytes, header, secs, Table};
use snapify_io::SnapifyIo;
use snapstore::{Dedup, DedupConfig};

struct Row {
    name: String,
    cold: simkernel::SimDuration,
    warm: simkernel::SimDuration,
    cold_shipped: u64,
    warm_shipped: u64,
    pipelined: simkernel::SimDuration,
    serial: simkernel::SimDuration,
}

impl Row {
    /// Fraction of the cold shipment the warm pass avoided.
    fn dedup_ratio(&self) -> f64 {
        if self.cold_shipped == 0 {
            return 0.0;
        }
        1.0 - self.warm_shipped as f64 / self.cold_shipped as f64
    }

    fn overlap_gain(&self) -> f64 {
        if self.pipelined.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.serial.as_secs_f64() / self.pipelined.as_secs_f64()
    }
}

fn registry(store_bytes: u64) -> FunctionRegistry {
    let reg = FunctionRegistry::new();
    reg.register(
        DeviceBinary::new("tenant.so", MB, 32 * MB).simple_function("spin", move |ctx| {
            ctx.compute(1e9, 60);
            Vec::new()
        }),
    );
    let _ = store_bytes;
    reg
}

/// Swap one tenant out cold, back in, and out again warm; report times
/// and shipped bytes from the store's own counters.
fn swap_cycle(name: &str, buffer_bytes: u64) -> Row {
    let label = name.to_string();
    Kernel::run_root(move || {
        let world = SnapifyWorld::boot_dedup(registry(buffer_bytes));
        let store = world.store().unwrap().clone();
        let sched = SwapScheduler::new(1, "/swap/bench").with_store(&store);
        let host = world.coi().create_host_process("t");
        let h = world.coi().create_process(&host, 0, "tenant.so").unwrap();
        let buf = h.create_buffer(buffer_bytes).unwrap();
        h.buffer_write(&buf, Payload::synthetic(42, buffer_bytes))
            .unwrap();
        let id = sched.admit(&h, 0);

        let t0 = simkernel::now();
        sched.park(id).unwrap();
        let t1 = simkernel::now();
        let cold_shipped = store.stats().bytes_shipped;

        sched.rotate().unwrap();

        let t2 = simkernel::now();
        sched.park(id).unwrap();
        let t3 = simkernel::now();
        let warm_shipped = store.stats().bytes_shipped - cold_shipped;

        // Pipeline overlap on the same image size, isolated from the
        // swap machinery: one big stream through pipelined vs. serial
        // dedup over the Snapify-IO transport.
        let (pipelined, serial) = pipeline_compare(world.server(), buffer_bytes);

        Row {
            name: label,
            cold: t1 - t0,
            warm: t3 - t2,
            cold_shipped,
            warm_shipped,
            pipelined,
            serial,
        }
    })
}

fn pipeline_compare(
    server: &PhiServer,
    size: u64,
) -> (simkernel::SimDuration, simkernel::SimDuration) {
    let time_one = |pipelined: bool, path: &str| {
        let backend = std::sync::Arc::new(SnapifyIo::new_default(server));
        let store = Dedup::new(
            server,
            backend,
            DedupConfig {
                pipelined,
                ..DedupConfig::default()
            },
        );
        let data = Payload::synthetic(7, size);
        let t0 = simkernel::now();
        let mut sink = store.sink(NodeId::device(0), path).unwrap();
        for chunk in data.chunks(8 * MB) {
            sink.write(chunk).unwrap();
        }
        sink.close().unwrap();
        simkernel::now() - t0
    };
    (
        time_one(true, "/bench/piped"),
        time_one(false, "/bench/serial"),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
    let params = PlatformParams::default();
    header(
        if quick {
            "Dedup store: cold vs warm swap-out (quick)"
        } else {
            "Dedup store: cold vs warm swap-out"
        },
        &params,
    );

    let sizes: &[(&str, u64)] = if quick {
        &[("tenant-512M", 512 * MB)]
    } else {
        &[
            ("tenant-512M", 512 * MB),
            ("tenant-1G", GB),
            ("tenant-2G", 2 * GB),
        ]
    };
    let rows: Vec<Row> = sizes.iter().map(|(n, s)| swap_cycle(n, *s)).collect();

    let mut t = Table::new(vec![
        "tenant",
        "cold out",
        "warm out",
        "cold shipped",
        "warm shipped",
        "dedup",
        "overlap gain",
    ]);
    for r in &rows {
        t.row(vec![
            r.name.clone(),
            secs(r.cold),
            secs(r.warm),
            bytes(r.cold_shipped),
            bytes(r.warm_shipped),
            format!("{:.1}%", r.dedup_ratio() * 100.0),
            format!("{:.2}x", r.overlap_gain()),
        ]);
    }
    t.print();
    println!();
    println!("shape checks: warm swap-out ships >=80% fewer bytes than cold; pipelined");
    println!("capture beats serial (digest of chunk k+1 overlaps shipping of chunk k).");

    for r in &rows {
        assert!(
            r.dedup_ratio() >= 0.8,
            "{}: warm swap-out must ship >=80% fewer bytes (got {:.1}%)",
            r.name,
            r.dedup_ratio() * 100.0
        );
    }

    dump_json("BENCH_dedup.json", &rows, quick);
}

fn dump_json(path: &str, rows: &[Row], quick: bool) {
    let mut out = String::from("{\n  \"benches\": [");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"cold_secs\": {:.6}, \"warm_secs\": {:.6}, \
             \"cold_shipped_bytes\": {}, \"warm_shipped_bytes\": {}, \
             \"dedup_ratio\": {:.4}, \"pipelined_secs\": {:.6}, \"serial_secs\": {:.6}, \
             \"overlap_gain\": {:.4}}}",
            r.name,
            r.cold.as_secs_f64(),
            r.warm.as_secs_f64(),
            r.cold_shipped,
            r.warm_shipped,
            r.dedup_ratio(),
            r.pipelined.as_secs_f64(),
            r.serial.as_secs_f64(),
            r.overlap_gain()
        ));
    }
    out.push_str(&format!("\n  ],\n  \"quick\": {quick}\n}}\n"));
    match std::fs::write(path, out) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
