//! **obs_overhead** — wall-clock cost of the dimensional telemetry
//! pipeline on the swap plane's hot path.
//!
//! The labeled-metrics contract is that instrumentation is cheap enough
//! to leave on: interned label sets mean no per-observation allocation,
//! and every recording site is gated on one relaxed atomic load when
//! the recorder is disabled. This harness proves both ends:
//!
//! * `swap_rotate_obs_off` / `swap_rotate_obs_on` — the same two-tenant
//!   swap-rotate workload (park / rotate ×N through the scheduler) with
//!   the recorder disabled vs enabled. The relative delta is the
//!   pipeline's end-to-end overhead; the gate requires it under 5%
//!   (full mode).
//! * `labeled_hot_path` — a micro-loop of labeled counter + latency
//!   sketch observations through cached [`MetricId`]s, reporting ns/op
//!   for one fully-labeled observation.
//!
//! Pass `--quick` (or set `BENCH_QUICK=1`) for a fast smoke run (CI);
//! quick runs are too short for a tight relative bound, so the gate
//! loosens to 25% there. Dumps `BENCH_obs.json` next to the other
//! `BENCH_*.json` artifacts.
//!
//! [`MetricId`]: simkernel::obs::MetricId

use std::hint::black_box;
use std::time::Instant;

use coi_sim::{DeviceBinary, FunctionRegistry};
use phi_platform::{Payload, MB};
use simkernel::obs;
use simkernel::time::ms;
use simkernel::Kernel;
use snapify::{SnapifyWorld, SwapScheduler};

/// One full two-tenant rotate cycle: tenant A (16 MiB) parked, tenant B
/// (48 MiB) resident, then `rotations` hand-offs. Telemetry recording
/// state is whatever the caller set globally before the run.
fn swap_rotate_workload(rotations: usize) {
    Kernel::run_root(move || {
        let registry = FunctionRegistry::new();
        registry.register(DeviceBinary::new("tenant.so", MB, 32 * MB));
        let world = SnapifyWorld::boot(registry);
        let sched = SwapScheduler::new(1, "/swap/obs-bench");
        let host = world.coi().create_host_process("obs-bench");

        let ha = world.coi().create_process(&host, 0, "tenant.so").unwrap();
        let ba = ha.create_buffer(16 * MB).unwrap();
        ha.buffer_write(&ba, Payload::synthetic(11, 16 * MB))
            .unwrap();
        let a = sched.admit_tagged(&ha, 0, "tenant-a");
        sched.park(a).unwrap();

        let hb = world.coi().create_process(&host, 0, "tenant.so").unwrap();
        let bb = hb.create_buffer(48 * MB).unwrap();
        hb.buffer_write(&bb, Payload::synthetic(12, 48 * MB))
            .unwrap();
        let _b = sched.admit_tagged(&hb, 0, "tenant-b");

        for _ in 0..rotations {
            sched.rotate().unwrap();
            simkernel::sleep(ms(2));
        }
    });
}

/// Best-of-`batches` wall seconds for `f`, with `warmups` discarded
/// runs first.
fn best_secs(warmups: u32, batches: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmups {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// ns per fully-labeled observation (one counter add + one latency
/// sketch observe) through cached metric ids — the steady-state hot
/// path, no interning and no allocation per op.
fn labeled_hot_path_ns(ops: u64) -> f64 {
    obs::reset();
    obs::enable();
    let ctr = obs::counter_id(
        "bench.ops",
        &[("device", "0"), ("op", "rotate"), ("tenant", "tenant-a")],
    );
    let sk = obs::sketch_id(
        "bench.latency_ns",
        &[("device", "0"), ("op", "rotate"), ("tenant", "tenant-a")],
    );
    let t0 = Instant::now();
    for i in 0..ops {
        obs::counter_add_at(ctr, 1);
        obs::sketch_observe_at(sk, black_box(1000 + i % 997));
    }
    let secs = t0.elapsed().as_secs_f64();
    obs::disable();
    obs::reset();
    // Two metric updates per iteration.
    secs * 1e9 / (ops * 2) as f64
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
    let (warmups, batches) = if quick { (1, 3) } else { (2, 7) };
    let rotations = if quick { 4 } else { 10 };
    let hot_ops: u64 = if quick { 200_000 } else { 2_000_000 };
    // Wall-clock ratios on short runs are noisy; the tight bound is
    // enforced on full runs, CI smoke keeps a generous margin.
    let gate_pct = if quick { 25.0 } else { 5.0 };

    println!();
    println!(
        "telemetry pipeline overhead benchmarks{}",
        if quick { " (quick)" } else { "" }
    );
    println!("{}", "-".repeat(70));

    // Interleave off/on batches so machine drift hits both sides alike.
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    for _ in 0..warmups {
        obs::disable();
        obs::reset();
        swap_rotate_workload(rotations);
    }
    for _ in 0..batches {
        obs::disable();
        obs::reset();
        off = off.min(best_secs(0, 1, || swap_rotate_workload(rotations)));
        obs::reset();
        obs::enable();
        on = on.min(best_secs(0, 1, || swap_rotate_workload(rotations)));
        obs::disable();
    }
    obs::reset();

    let overhead_pct = (on - off) / off * 100.0;
    println!("{:<28} {:>9.3} ms", "swap_rotate_obs_off", off * 1e3);
    println!("{:<28} {:>9.3} ms", "swap_rotate_obs_on", on * 1e3);
    println!(
        "{:<28} {:>8.2} %  (gate: < {gate_pct}%)",
        "labeled overhead", overhead_pct
    );

    let ns_per_op = labeled_hot_path_ns(hot_ops);
    println!("{:<28} {:>8.1} ns/op", "labeled_hot_path", ns_per_op);

    let json = format!(
        "{{\n  \"benches\": [\n    {{\"name\": \"swap_rotate_obs_off\", \"wall_secs\": {off:.6}}},\n    \
         {{\"name\": \"swap_rotate_obs_on\", \"wall_secs\": {on:.6}}},\n    \
         {{\"name\": \"labeled_hot_path\", \"ns_per_op\": {ns_per_op:.1}}}\n  ],\n  \
         \"overhead_pct\": {overhead_pct:.3},\n  \"gate_pct\": {gate_pct},\n  \"quick\": {quick}\n}}\n"
    );
    match std::fs::write("BENCH_obs.json", json) {
        Ok(()) => println!("\nwrote BENCH_obs.json"),
        Err(e) => eprintln!("\nfailed to write BENCH_obs.json: {e}"),
    }

    assert!(
        overhead_pct < gate_pct,
        "telemetry overhead {overhead_pct:.2}% exceeds the {gate_pct}% gate \
         (obs-off {off:.4}s, obs-on {on:.4}s)"
    );
    println!("overhead gate passed");
}
