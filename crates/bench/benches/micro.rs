//! Micro-benchmarks of the reproduction's real hot paths: the simulation
//! kernel's context hand-off, payload digesting/chunking, and the COI
//! wire codec. These measure *wall-clock* performance of the simulator
//! itself (everything else in `benches/` reports virtual time).
//!
//! Self-timed harness (`harness = false`): warm up, then report the best
//! mean over a handful of measured batches.

use std::hint::black_box;
use std::time::Instant;

use coi_sim::msgs::{CtlMsg, RunMsg};
use phi_platform::Payload;
use simkernel::{Kernel, SimChannel};

/// Time `f` and print a per-iteration mean: 3 warm-up runs, then the
/// best of 5 timed batches.
fn bench(name: &str, mut f: impl FnMut()) {
    for _ in 0..3 {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let iters = 10u32;
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per_iter = t0.elapsed().as_secs_f64() / iters as f64;
        if per_iter < best {
            best = per_iter;
        }
    }
    if best >= 1e-3 {
        println!("{name:<45} {:>10.3} ms/iter", best * 1e3);
    } else {
        println!("{name:<45} {:>10.3} µs/iter", best * 1e6);
    }
}

fn bench_kernel_handoff() {
    bench("simkernel/ping_pong_1000", || {
        Kernel::run_root(|| {
            let ch: SimChannel<u64> = SimChannel::unbounded("ping");
            let resp: SimChannel<u64> = SimChannel::unbounded("pong");
            let (ch2, resp2) = (ch.clone(), resp.clone());
            simkernel::spawn("echo", move || {
                while let Ok(v) = ch2.recv() {
                    resp2.send(v).unwrap();
                }
            });
            for i in 0..1000u64 {
                ch.send(i).unwrap();
                black_box(resp.recv().unwrap());
            }
            ch.close();
        })
    });
}

fn bench_payload() {
    let rechunked = Payload::concat(Payload::synthetic(7, 1 << 30).chunks(4 << 20));
    bench("payload/digest_synthetic_1gib_rechunked", || {
        black_box(rechunked.digest());
    });

    let data: Vec<u8> = (0..(1 << 20)).map(|i| (i % 251) as u8).collect();
    let real = Payload::bytes(data);
    bench("payload/digest_real_1mib", || {
        black_box(real.digest());
    });

    let big = Payload::synthetic(7, 1 << 30);
    bench("payload/chunk_1gib_at_4mib", || {
        black_box(big.chunks(4 << 20).len());
    });
}

fn bench_wire() {
    let ctl = CtlMsg::SnapifyRestoreReply {
        pid: 42,
        ports: [1, 2, 3, 4],
        addr_table: (0..16).map(|i| (i, 4096, i * 16, i * 32)).collect(),
        breakdown: (1, 2, 3, 4),
        error: String::new(),
    };
    bench("wire/ctl_roundtrip", || {
        let enc = ctl.encode();
        black_box(CtlMsg::decode(&enc).unwrap());
    });

    let run = RunMsg::Request {
        id: 7,
        function: "kernel".into(),
        args: vec![0; 64],
        buffers: vec![1, 2, 3],
    };
    bench("wire/run_request_roundtrip", || {
        let enc = run.encode();
        black_box(RunMsg::decode(&enc).unwrap());
    });
}

fn main() {
    println!("== micro: simulator wall-clock hot paths ==");
    bench_kernel_handoff();
    bench_payload();
    bench_wire();
}
