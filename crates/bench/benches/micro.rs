//! Criterion micro-benchmarks of the reproduction's real hot paths: the
//! simulation kernel's context hand-off, payload digesting/chunking, and
//! the COI wire codec. These measure *wall-clock* performance of the
//! simulator itself (everything else in `benches/` reports virtual time).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use coi_sim::msgs::{CtlMsg, RunMsg};
use phi_platform::Payload;
use simkernel::{Kernel, SimChannel};

fn bench_kernel_handoff(c: &mut Criterion) {
    c.bench_function("simkernel/ping_pong_1000", |b| {
        b.iter(|| {
            Kernel::run_root(|| {
                let ch: SimChannel<u64> = SimChannel::unbounded("ping");
                let resp: SimChannel<u64> = SimChannel::unbounded("pong");
                let (ch2, resp2) = (ch.clone(), resp.clone());
                simkernel::spawn("echo", move || {
                    while let Ok(v) = ch2.recv() {
                        resp2.send(v).unwrap();
                    }
                });
                for i in 0..1000u64 {
                    ch.send(i).unwrap();
                    black_box(resp.recv().unwrap());
                }
                ch.close();
            })
        })
    });
}

fn bench_payload(c: &mut Criterion) {
    c.bench_function("payload/digest_synthetic_1gib_rechunked", |b| {
        let p = Payload::concat(Payload::synthetic(7, 1 << 30).chunks(4 << 20));
        b.iter(|| black_box(p.digest()))
    });
    c.bench_function("payload/digest_real_1mib", |b| {
        let data: Vec<u8> = (0..(1 << 20)).map(|i| (i % 251) as u8).collect();
        let p = Payload::bytes(data);
        b.iter(|| black_box(p.digest()))
    });
    c.bench_function("payload/chunk_1gib_at_4mib", |b| {
        let p = Payload::synthetic(7, 1 << 30);
        b.iter(|| black_box(p.chunks(4 << 20).len()))
    });
}

fn bench_wire(c: &mut Criterion) {
    c.bench_function("wire/ctl_roundtrip", |b| {
        let msg = CtlMsg::SnapifyRestoreReply {
            pid: 42,
            ports: [1, 2, 3, 4],
            addr_table: (0..16).map(|i| (i, 4096, i * 16, i * 32)).collect(),
            breakdown: (1, 2, 3, 4),
            error: String::new(),
        };
        b.iter(|| {
            let enc = msg.encode();
            black_box(CtlMsg::decode(&enc).unwrap())
        })
    });
    c.bench_function("wire/run_request_roundtrip", |b| {
        let msg = RunMsg::Request {
            id: 7,
            function: "kernel".into(),
            args: vec![0; 64],
            buffers: vec![1, 2, 3],
        };
        b.iter(|| {
            let enc = msg.encode();
            black_box(RunMsg::decode(&enc).unwrap())
        })
    });
}

criterion_group!(benches, bench_kernel_handoff, bench_payload, bench_wire);
criterion_main!(benches);
