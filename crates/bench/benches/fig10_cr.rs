//! **Fig 10 (a)–(c)** — checkpoint and restart of the OpenMP offload
//! benchmarks: checkpoint-time breakdown (pause / host snapshot+write /
//! device snapshot+write), checkpoint file sizes (host snapshot, device
//! snapshot, local store), and restart-time breakdown (host restart /
//! offload restore / resume).
//!
//! Paper shape targets: checkpoint 3–21 s, restart 3–24 s; snapshot files
//! from ~8 MB to ~1.3 GB; SS/SG pause dominated by their local stores and
//! their restart dominated by the host snapshot; for all but the
//! store-heavy benchmarks the device side finishes after the host side.

use coi_sim::FunctionRegistry;
use phi_platform::PlatformParams;
use simkernel::Kernel;
use snapify::{checkpoint_application, restart_application, SnapifyWorld};
use snapify_bench::{bytes, header, secs, Table};
use workloads::{register_suite, suite, WorkloadRun, WorkloadSpec};

struct Row {
    name: &'static str,
    ckpt: snapify::CheckpointReport,
    restart: snapify::RestartReport,
}

fn run_one(spec: WorkloadSpec) -> Row {
    Kernel::run_root(move || {
        let registry = FunctionRegistry::new();
        register_suite(&registry, std::slice::from_ref(&spec));
        let world = SnapifyWorld::boot(registry);
        let run = WorkloadRun::launch(world.coi(), &spec, 0).unwrap();
        let handle = run.handle().clone();
        let host_proc = run.host_proc().clone();
        let state_view = std::sync::Arc::new(run);

        // Drive the iteration loop on its own thread.
        let driver = {
            let r = std::sync::Arc::clone(&state_view);
            host_proc.spawn_thread("driver", move || r.run_to_completion())
        };
        // Checkpoint mid-run.
        simkernel::sleep(simkernel::time::ms(300));
        let host_state = state_view.host_state();
        let path = format!("/snap/fig10/{}", spec.name);
        let (_snap, ckpt) = checkpoint_application(&world, &handle, &host_state, &path).unwrap();

        // The application finishes correctly after the checkpoint.
        let result = driver.join().unwrap();
        assert!(result.verified, "{} failed after checkpoint", spec.name);

        // Kill everything and restart from the snapshot on device 1.
        state_view.destroy().unwrap();
        host_proc.exit();
        let restarted = restart_application(&world, &path, &spec.binary_name(), 1).unwrap();
        let restart = restarted.report.clone();
        let resumed = WorkloadRun::resume_after_restart(
            &spec,
            &restarted.handle,
            &restarted.host_proc,
            &restarted.host_state,
        );
        let result = resumed.run_to_completion().unwrap();
        assert!(result.verified, "{} failed after restart", spec.name);
        resumed.destroy().unwrap();
        Row {
            name: spec.name,
            ckpt,
            restart,
        }
    })
}

fn main() {
    let params = PlatformParams::default();
    header(
        "Fig 10(a-c): checkpoint and restart of the OpenMP benchmarks",
        &params,
    );

    let rows: Vec<Row> = suite().into_iter().map(run_one).collect();

    println!("Fig 10(a): checkpoint time breakdown (s)");
    let mut t = Table::new(vec![
        "benchmark",
        "pause",
        "snap+write (host)",
        "snap+write (device)",
        "resume",
        "total",
    ]);
    for r in &rows {
        t.row(vec![
            r.name.to_string(),
            secs(r.ckpt.pause),
            secs(r.ckpt.host_snapshot),
            secs(r.ckpt.device_capture),
            secs(r.ckpt.resume),
            secs(r.ckpt.total),
        ]);
    }
    t.print();
    println!();

    println!("Fig 10(b): checkpoint file sizes");
    let mut t = Table::new(vec![
        "benchmark",
        "host snapshot",
        "device snapshot",
        "local store",
    ]);
    for r in &rows {
        t.row(vec![
            r.name.to_string(),
            bytes(r.ckpt.host_snapshot_bytes),
            bytes(r.ckpt.device_snapshot_bytes),
            bytes(r.ckpt.local_store_bytes),
        ]);
    }
    t.print();
    println!();

    println!("Fig 10(c): restart time breakdown (s)");
    let mut t = Table::new(vec![
        "benchmark",
        "host restart",
        "lib copy",
        "store copy",
        "blcr restart",
        "offload total",
        "total",
    ]);
    for r in &rows {
        let bd = r.restart.offload_breakdown.unwrap_or_default();
        let s_ns = |ns: u64| format!("{:.3}", ns as f64 / 1e9);
        t.row(vec![
            r.name.to_string(),
            secs(r.restart.host_restart),
            s_ns(bd.library_copy_ns),
            s_ns(bd.store_copy_ns),
            s_ns(bd.blcr_restart_ns),
            secs(r.restart.offload_restore),
            secs(r.restart.total),
        ]);
    }
    t.print();
    println!();
    println!("shape checks: checkpoint 3-21 s / restart 3-24 s in the paper; SS/SG pause");
    println!("dominated by local store; SS/SG restart dominated by host snapshot restore.");
}
