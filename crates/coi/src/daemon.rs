//! The COI daemon (`coi_daemon` in Fig 1): one per coprocessor.
//!
//! The daemon listens on a fixed SCIF port, launches offload processes on
//! request, monitors them, and — with the Snapify extensions — coordinates
//! pause / capture / resume / restore (Fig 3). It is chosen as the
//! coordinator because there is exactly one per coprocessor on a
//! well-known port (§4.1).
//!
//! A dedicated **Snapify monitor thread** oversees in-progress requests by
//! polling the per-process pipes, exactly as described in the paper: it is
//! (re)created when the active-request list becomes non-empty and exits
//! when the list drains.

use std::collections::HashMap;
use std::sync::Arc;

use blcr_sim::BlcrConfig;
use phi_platform::{NodeId, PlatformParams, SimNode};
use scif_sim::{ports, Scif, ScifEndpoint};
use simkernel::obs;
use simkernel::SimMutex;
use simproc::{signum, PidAllocator, SimProcess};

use crate::binary::FunctionRegistry;
use crate::config::CoiConfig;
use crate::msgs::{CtlMsg, PipeMsg};
use crate::offload::{OffloadRuntime, SnapifyPipe};
use crate::storage::SnapshotStorage;

struct DaemonEntry {
    runtime: OffloadRuntime,
    /// Set before a deliberate termination (destroy / swap-out) so the
    /// watchdog does not report a crash.
    intentional_exit: bool,
    /// The Snapify pipe, open between pause and resume (or restore and
    /// resume).
    pipe: Option<SnapifyPipe>,
}

/// A monitor-tracked in-flight Snapify request.
struct ActiveRequest {
    pid: u64,
    pipe: SnapifyPipe,
    ctl: ScifEndpoint,
    stage: ReqStage,
    /// Virtual time of the last observed progress (request registration
    /// or the latest pipe message), for the watchdog deadline.
    last_progress: simkernel::SimTime,
    /// Watchdog deadline extensions granted since `last_progress`.
    extensions: u32,
}

impl ActiveRequest {
    fn new(pid: u64, pipe: SnapifyPipe, ctl: ScifEndpoint, stage: ReqStage) -> ActiveRequest {
        ActiveRequest {
            pid,
            pipe,
            ctl,
            stage,
            last_progress: simkernel::now(),
            extensions: 0,
        }
    }
}

#[allow(clippy::enum_variant_names)]
enum ReqStage {
    /// Waiting for the signal handler's handshake ack (Fig 3 step 2).
    AwaitPauseAck {
        /// Snapshot directory to forward with the pause request.
        path: String,
    },
    /// Pause request forwarded; waiting for drain + local-store save.
    AwaitPauseComplete,
    /// Capture request forwarded; waiting for the snapshot.
    AwaitCaptureComplete {
        /// Whether the process terminates after the capture (swap-out).
        terminate: bool,
    },
    /// Resume request forwarded.
    AwaitResumeAck,
}

struct MonitorState {
    requests: Vec<ActiveRequest>,
    running: bool,
}

struct Inner {
    device_index: usize,
    node: SimNode,
    scif: Scif,
    config: CoiConfig,
    blcr: BlcrConfig,
    params: PlatformParams,
    registry: FunctionRegistry,
    storage: Arc<dyn SnapshotStorage>,
    pids: PidAllocator,
    daemon_proc: SimProcess,
    entries: SimMutex<HashMap<u64, DaemonEntry>>,
    monitor: SimMutex<MonitorState>,
    crashes: SimMutex<Vec<u64>>,
}

/// Handle to one device's COI daemon. Cheap to clone.
#[derive(Clone)]
pub struct CoiDaemon {
    inner: Arc<Inner>,
}

impl CoiDaemon {
    /// Start the daemon for `device_index` (spawns its listener thread).
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        device_index: usize,
        node: &SimNode,
        scif: &Scif,
        config: &CoiConfig,
        blcr: &BlcrConfig,
        params: &PlatformParams,
        registry: &FunctionRegistry,
        storage: Arc<dyn SnapshotStorage>,
        pids: &PidAllocator,
    ) -> CoiDaemon {
        let daemon_proc =
            SimProcess::new(pids.alloc(), format!("coi_daemon:{}", node.name()), node);
        let daemon = CoiDaemon {
            inner: Arc::new(Inner {
                device_index,
                node: node.clone(),
                scif: scif.clone(),
                config: config.clone(),
                blcr: blcr.clone(),
                params: params.clone(),
                registry: registry.clone(),
                storage,
                pids: pids.clone(),
                entries: SimMutex::new(format!("daemon entries {}", node.name()), HashMap::new()),
                monitor: SimMutex::new(
                    format!("daemon monitor {}", node.name()),
                    MonitorState {
                        requests: Vec::new(),
                        running: false,
                    },
                ),
                crashes: SimMutex::new(format!("daemon crashes {}", node.name()), Vec::new()),
                daemon_proc,
            }),
        };
        let listener = scif.listen(node.id(), ports::COI_DAEMON);
        let d = daemon.clone();
        daemon.inner.daemon_proc.spawn_service("listener", move || {
            while let Ok(ep) = listener.accept() {
                let d2 = d.clone();
                d.inner.daemon_proc.spawn_service("ctl-handler", move || {
                    d2.ctl_handler(ep);
                });
            }
        });
        daemon
    }

    /// The device this daemon serves.
    pub fn device_index(&self) -> usize {
        self.inner.device_index
    }

    /// The node the daemon runs on.
    pub fn node(&self) -> &SimNode {
        &self.inner.node
    }

    /// Look up a live offload runtime by pid (testing/diagnostics).
    pub fn runtime(&self, pid: u64) -> Option<OffloadRuntime> {
        self.inner
            .entries
            .lock()
            .get(&pid)
            .map(|e| e.runtime.clone())
    }

    /// Pids whose processes exited without a deliberate termination.
    pub fn crashed_pids(&self) -> Vec<u64> {
        self.inner.crashes.lock().clone()
    }

    /// Number of live offload processes.
    pub fn live_processes(&self) -> usize {
        self.inner
            .entries
            .lock()
            .values()
            .filter(|e| !e.runtime.is_terminated())
            .count()
    }

    fn ctl_handler(&self, ep: ScifEndpoint) {
        loop {
            let payload = match ep.recv() {
                Ok(p) => p,
                Err(_) => return,
            };
            let msg = match CtlMsg::decode(&payload) {
                Ok(m) => m,
                Err(_) => continue,
            };
            match msg {
                CtlMsg::CreateProcess { host_pid, binary } => {
                    self.handle_create(&ep, host_pid, &binary);
                }
                CtlMsg::DestroyProcess { pid } => {
                    if let Some(entry) = self.inner.entries.lock().get_mut(&pid) {
                        entry.intentional_exit = true;
                    }
                    if let Some(rt) = self.runtime(pid) {
                        rt.terminate();
                    }
                    self.inner.entries.lock().remove(&pid);
                    let _ = ep.send(CtlMsg::DestroyAck.encode());
                }
                CtlMsg::SnapifyPause { pid, path } => {
                    self.handle_pause(&ep, pid, path);
                }
                CtlMsg::SnapifyCapture {
                    pid,
                    path,
                    terminate,
                } => {
                    self.handle_capture(&ep, pid, path, terminate);
                }
                CtlMsg::SnapifyResume { pid } => {
                    self.handle_resume(&ep, pid);
                }
                CtlMsg::SnapifyRestore { path, host_pid } => {
                    self.handle_restore(&ep, &path, host_pid);
                }
                _ => { /* replies never arrive at the daemon */ }
            }
        }
    }

    fn handle_create(&self, ep: &ScifEndpoint, host_pid: u64, binary: &str) {
        let _span = obs::span!(
            "coi.daemon.create",
            device = self.inner.device_index,
            binary = binary
        );
        let Some(bin) = self.inner.registry.get(binary) else {
            let _ = ep.send(
                CtlMsg::CreateProcessReply {
                    pid: 0,
                    ports: [0; 4],
                }
                .encode(),
            );
            return;
        };
        // Process spawn + binary copy over PCIe + dynamic load (§2).
        simkernel::sleep(self.inner.params.process_spawn);
        self.inner
            .scif
            .server()
            .rdma_between(NodeId::HOST, self.inner.node.id(), bin.image_bytes);
        simkernel::sleep(self.inner.params.library_load);
        let launched = OffloadRuntime::launch(
            &self.inner.config,
            &self.inner.blcr,
            &self.inner.scif,
            &self.inner.node,
            &self.inner.pids,
            bin,
            host_pid,
            Arc::clone(&self.inner.storage),
            self.inner.params.signal_latency,
        );
        match launched {
            Ok((rt, ports)) => {
                let pid = rt.proc().pid().0;
                self.inner.entries.lock().insert(
                    pid,
                    DaemonEntry {
                        runtime: rt.clone(),
                        intentional_exit: false,
                        pipe: None,
                    },
                );
                // Watchdog: notice unintentional exits (crashes).
                let daemon = self.clone();
                let proc = rt.proc().clone();
                self.inner.daemon_proc.spawn_service("watchdog", move || {
                    proc.wait_exit();
                    let intentional = daemon
                        .inner
                        .entries
                        .lock()
                        .get(&pid)
                        .map(|e| e.intentional_exit)
                        .unwrap_or(true);
                    if !intentional {
                        daemon.inner.crashes.lock().push(pid);
                    }
                });
                let _ = ep.send(CtlMsg::CreateProcessReply { pid, ports }.encode());
            }
            Err(_) => {
                let _ = ep.send(
                    CtlMsg::CreateProcessReply {
                        pid: 0,
                        ports: [0; 4],
                    }
                    .encode(),
                );
            }
        }
    }

    fn handle_pause(&self, ep: &ScifEndpoint, pid: u64, path: String) {
        obs::counter_add("coi.daemon.pause_requests", 1);
        let Some(rt) = self.runtime(pid) else {
            let _ = ep.send(CtlMsg::SnapifyPauseComplete { ok: false }.encode());
            return;
        };
        // Fig 3 step 1-2: create the pipe, install it, signal the process.
        let pipe = SnapifyPipe::new(pid);
        rt.install_pipe(pipe.clone());
        if let Some(entry) = self.inner.entries.lock().get_mut(&pid) {
            entry.pipe = Some(pipe.clone());
        }
        rt.signals().kill(rt.proc(), signum::SIGSNAPIFY);
        self.register_request(ActiveRequest::new(
            pid,
            pipe,
            ep.clone(),
            ReqStage::AwaitPauseAck { path },
        ));
    }

    fn handle_capture(&self, ep: &ScifEndpoint, pid: u64, path: String, terminate: bool) {
        let pipe = self
            .inner
            .entries
            .lock()
            .get(&pid)
            .and_then(|e| e.pipe.clone());
        let Some(pipe) = pipe else {
            let _ = ep.send(
                CtlMsg::SnapifyCaptureComplete {
                    ok: false,
                    snapshot_bytes: 0,
                }
                .encode(),
            );
            return;
        };
        if terminate {
            if let Some(entry) = self.inner.entries.lock().get_mut(&pid) {
                entry.intentional_exit = true;
            }
        }
        let _ = pipe
            .to_offload
            .send(PipeMsg::CaptureReq { path, terminate });
        self.register_request(ActiveRequest::new(
            pid,
            pipe,
            ep.clone(),
            ReqStage::AwaitCaptureComplete { terminate },
        ));
    }

    fn handle_resume(&self, ep: &ScifEndpoint, pid: u64) {
        let pipe = self
            .inner
            .entries
            .lock()
            .get(&pid)
            .and_then(|e| e.pipe.clone());
        let Some(pipe) = pipe else {
            let _ = ep.send(CtlMsg::SnapifyResumeComplete.encode());
            return;
        };
        let _ = pipe.to_offload.send(PipeMsg::ResumeReq);
        self.register_request(ActiveRequest::new(
            pid,
            pipe,
            ep.clone(),
            ReqStage::AwaitResumeAck,
        ));
    }

    fn handle_restore(&self, ep: &ScifEndpoint, path: &str, _host_pid: u64) {
        let _span = obs::span!(
            "coi.daemon.restore",
            device = self.inner.device_index,
            path = path
        );
        let server = self.inner.scif.server().clone();
        let node_id = self.inner.node.id();
        let restored = OffloadRuntime::restore(
            &self.inner.config,
            &self.inner.blcr,
            &self.inner.scif,
            &self.inner.node,
            &self.inner.pids,
            &self.inner.registry,
            Arc::clone(&self.inner.storage),
            path,
            self.inner.params.signal_latency,
            // "the COI daemon first copies the local store and the runtime
            // libraries needed by the offload process on the fly" (§4.3).
            |image_bytes| {
                server.rdma_between(NodeId::HOST, node_id, image_bytes);
            },
        );
        match restored {
            Ok((rt, ports, addr_table, breakdown)) => {
                let pid = rt.proc().pid().0;
                // Re-attach the daemon's bookkeeping (the paper: "the
                // coi_daemon needs to be brought into the picture again").
                let pipe = SnapifyPipe::new(pid);
                rt.install_pipe(pipe.clone());
                // The restored process starts paused; spawn its pipe
                // handler directly so a later resume reaches it.
                {
                    let rt2 = rt.clone();
                    rt.proc().spawn_service("snapify-pipe", move || {
                        rt2.restored_pipe_handler();
                    });
                }
                self.inner.entries.lock().insert(
                    pid,
                    DaemonEntry {
                        runtime: rt.clone(),
                        intentional_exit: false,
                        pipe: Some(pipe),
                    },
                );
                let _ = ep.send(
                    CtlMsg::SnapifyRestoreReply {
                        pid,
                        ports,
                        addr_table,
                        breakdown: (
                            breakdown.library_copy_ns,
                            breakdown.store_copy_ns,
                            breakdown.blcr_restart_ns,
                            breakdown.reregistration_ns,
                        ),
                        error: String::new(),
                    }
                    .encode(),
                );
            }
            Err(e) => {
                let _ = ep.send(
                    CtlMsg::SnapifyRestoreReply {
                        pid: 0,
                        ports: [0; 4],
                        addr_table: Vec::new(),
                        breakdown: (0, 0, 0, 0),
                        error: e.to_string(),
                    }
                    .encode(),
                );
            }
        }
    }

    /// Add a request to the monitor's list, creating the monitor thread if
    /// none is running (the paper's dedicated Snapify monitor thread).
    fn register_request(&self, req: ActiveRequest) {
        let mut mon = self.inner.monitor.lock();
        mon.requests.push(req);
        if !mon.running {
            mon.running = true;
            drop(mon);
            let daemon = self.clone();
            self.inner
                .daemon_proc
                .spawn_service("snapify-monitor", move || {
                    daemon.monitor_loop();
                });
        }
    }

    fn monitor_loop(&self) {
        loop {
            {
                let mut mon = self.inner.monitor.lock();
                if mon.requests.is_empty() {
                    mon.running = false;
                    return;
                }
                let mut i = 0;
                while i < mon.requests.len() {
                    let done = self.poll_request(&mut mon.requests[i]);
                    if done {
                        mon.requests.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
            }
            simkernel::sleep(self.inner.config.poll_interval);
        }
    }

    /// Poll one request's pipe; returns true when the request completed
    /// (or the watchdog gave up on it).
    fn poll_request(&self, req: &mut ActiveRequest) -> bool {
        let Some(msg) = req.pipe.to_daemon.try_recv() else {
            return self.watchdog_check(req);
        };
        // Any pipe message is progress: the offload side is alive.
        req.last_progress = simkernel::now();
        req.extensions = 0;
        match (&req.stage, msg) {
            (ReqStage::AwaitPauseAck { path }, PipeMsg::PauseAck) => {
                // Handshake done (Fig 3 step 3); forward the pause request
                // (step 4).
                let _ = req
                    .pipe
                    .to_offload
                    .send(PipeMsg::PauseReq { path: path.clone() });
                req.stage = ReqStage::AwaitPauseComplete;
                false
            }
            (ReqStage::AwaitPauseComplete, PipeMsg::PauseComplete { ok }) => {
                let _ = req.ctl.send(CtlMsg::SnapifyPauseComplete { ok }.encode());
                true
            }
            (
                ReqStage::AwaitCaptureComplete { terminate },
                PipeMsg::CaptureComplete { ok, snapshot_bytes },
            ) => {
                if *terminate && ok {
                    self.inner.entries.lock().remove(&req.pid);
                }
                let _ = req
                    .ctl
                    .send(CtlMsg::SnapifyCaptureComplete { ok, snapshot_bytes }.encode());
                true
            }
            (ReqStage::AwaitResumeAck, PipeMsg::ResumeAck) => {
                if let Some(entry) = self.inner.entries.lock().get_mut(&req.pid) {
                    entry.pipe = None;
                }
                let _ = req.ctl.send(CtlMsg::SnapifyResumeComplete.encode());
                true
            }
            // Unexpected message for the stage: drop it and keep waiting.
            _ => false,
        }
    }

    /// Watchdog: a request whose stage has made no progress for the
    /// configured window gets bounded deadline extensions (exponential
    /// backoff — transient chaos-plane faults absorbed by transport
    /// retries only *slow* a stage down); once the budget is spent the
    /// request is surfaced to the requester as a typed failure reply
    /// instead of hanging it forever. Returns true when the request was
    /// given up on.
    fn watchdog_check(&self, req: &mut ActiveRequest) -> bool {
        let cfg = &self.inner.config;
        if cfg.watchdog_timeout == simkernel::SimDuration::ZERO {
            return false;
        }
        let window = cfg.watchdog_timeout * (1u64 << req.extensions.min(10));
        if simkernel::now().since(req.last_progress) < window {
            return false;
        }
        if req.extensions < cfg.watchdog_retries {
            req.extensions += 1;
            obs::counter_add("chaos.coi.watchdog_extensions", 1);
            obs::counter_add("chaos.retried", 1);
            return false;
        }
        obs::counter_add("chaos.coi.watchdog_expired", 1);
        obs::counter_add("chaos.surfaced", 1);
        let reply = match &req.stage {
            ReqStage::AwaitPauseAck { .. } | ReqStage::AwaitPauseComplete => {
                CtlMsg::SnapifyPauseComplete { ok: false }
            }
            ReqStage::AwaitCaptureComplete { .. } => CtlMsg::SnapifyCaptureComplete {
                ok: false,
                snapshot_bytes: 0,
            },
            ReqStage::AwaitResumeAck => CtlMsg::SnapifyResumeComplete,
        };
        let _ = req.ctl.send(reply.encode());
        true
    }
}

impl OffloadRuntime {
    /// Pipe handler for a freshly-restored process: waits for the resume
    /// request that re-activates it (§4.3: "the offload process, though
    /// restored, is not fully active until snapify_resume").
    pub(crate) fn restored_pipe_handler(&self) {
        let pipe_opt = { self.pipe_slot().lock().clone() };
        let Some(pipe) = pipe_opt else { return };
        loop {
            match pipe.to_offload.recv() {
                Ok(PipeMsg::ResumeReq) => {
                    self.clear_barrier_and_resume();
                    let _ = pipe.to_daemon.send(PipeMsg::ResumeAck);
                    return;
                }
                Ok(_) => continue,
                Err(_) => return,
            }
        }
    }
}
