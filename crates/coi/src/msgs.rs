//! COI control-plane message types and their wire encodings.
//!
//! Four message families, one per SCIF use case of §4.1:
//!
//! 1. [`CtlMsg`] — host ↔ COI daemon process-lifecycle traffic (and the
//!    Snapify service requests the daemon coordinates);
//! 2. (bulk RDMA carries no control messages — it is case 2);
//! 3. [`CmdMsg`] — host-client → offload-server commands, plus the
//!    offload-client → host-server [`StreamMsg`] log/event channels —
//!    all of which understand the Snapify **shutdown marker**;
//! 4. [`RunMsg`] — the offload-function pipeline (Fig 4).
//!
//! [`PipeMsg`] is the daemon ↔ offload-process UNIX-pipe protocol created
//! by `snapify_pause` (Fig 3).

use phi_platform::Payload;

use crate::wire::{Dec, DecodeError, Enc};

/// Host ↔ daemon control messages (SCIF use case 1 + Snapify service).
#[derive(Clone, Debug, PartialEq)]
pub enum CtlMsg {
    /// Launch an offload process for `host_pid` running `binary`.
    CreateProcess {
        /// Host process id (daemon monitors it).
        host_pid: u64,
        /// Device binary name to load.
        binary: String,
    },
    /// Reply to [`CtlMsg::CreateProcess`].
    CreateProcessReply {
        /// New offload process id.
        pid: u64,
        /// SCIF ports for the run/cmd/log/event channels, in that order.
        ports: [u16; 4],
    },
    /// Terminate the offload process (normal application exit).
    DestroyProcess {
        /// Offload process id.
        pid: u64,
    },
    /// Acknowledgement of [`CtlMsg::DestroyProcess`].
    DestroyAck,
    /// Snapify: pause the offload process (drain + local store save).
    SnapifyPause {
        /// Offload process id.
        pid: u64,
        /// Host-side snapshot directory.
        path: String,
    },
    /// Daemon: pause finished.
    SnapifyPauseComplete {
        /// Whether the pause succeeded.
        ok: bool,
    },
    /// Snapify: capture the offload process snapshot.
    SnapifyCapture {
        /// Offload process id.
        pid: u64,
        /// Host-side snapshot directory.
        path: String,
        /// Terminate the process after capture (swap-out).
        terminate: bool,
    },
    /// Daemon: capture finished; carries the device snapshot size.
    SnapifyCaptureComplete {
        /// Whether the capture succeeded.
        ok: bool,
        /// Bytes in the device snapshot file.
        snapshot_bytes: u64,
    },
    /// Snapify: resume the offload process.
    SnapifyResume {
        /// Offload process id.
        pid: u64,
    },
    /// Daemon: resume finished.
    SnapifyResumeComplete,
    /// Snapify: restore an offload process from a snapshot directory.
    SnapifyRestore {
        /// Host-side snapshot directory.
        path: String,
        /// Host process id adopting the restored process.
        host_pid: u64,
    },
    /// Reply to [`CtlMsg::SnapifyRestore`].
    SnapifyRestoreReply {
        /// New offload process id.
        pid: u64,
        /// SCIF ports for the run/cmd/log/event channels.
        ports: [u16; 4],
        /// RDMA address translations: (buffer id, size, old addr, new
        /// addr).
        addr_table: Vec<(u64, u64, u64, u64)>,
        /// Restore phase timings: (library copy, store copy, blcr
        /// restart, re-registration), in nanoseconds.
        breakdown: (u64, u64, u64, u64),
        /// Error message if the restore failed ports/table are invalid.
        error: String,
    },
}

impl CtlMsg {
    /// Encode for a SCIF message channel.
    pub fn encode(&self) -> Payload {
        match self {
            CtlMsg::CreateProcess { host_pid, binary } => {
                Enc::new().tag(1).u64(*host_pid).string(binary).payload()
            }
            CtlMsg::CreateProcessReply { pid, ports } => Enc::new()
                .tag(2)
                .u64(*pid)
                .u16(ports[0])
                .u16(ports[1])
                .u16(ports[2])
                .u16(ports[3])
                .payload(),
            CtlMsg::DestroyProcess { pid } => Enc::new().tag(3).u64(*pid).payload(),
            CtlMsg::DestroyAck => Enc::new().tag(4).payload(),
            CtlMsg::SnapifyPause { pid, path } => {
                Enc::new().tag(5).u64(*pid).string(path).payload()
            }
            CtlMsg::SnapifyPauseComplete { ok } => Enc::new().tag(6).boolean(*ok).payload(),
            CtlMsg::SnapifyCapture {
                pid,
                path,
                terminate,
            } => Enc::new()
                .tag(7)
                .u64(*pid)
                .string(path)
                .boolean(*terminate)
                .payload(),
            CtlMsg::SnapifyCaptureComplete { ok, snapshot_bytes } => Enc::new()
                .tag(8)
                .boolean(*ok)
                .u64(*snapshot_bytes)
                .payload(),
            CtlMsg::SnapifyResume { pid } => Enc::new().tag(9).u64(*pid).payload(),
            CtlMsg::SnapifyResumeComplete => Enc::new().tag(10).payload(),
            CtlMsg::SnapifyRestore { path, host_pid } => {
                Enc::new().tag(11).string(path).u64(*host_pid).payload()
            }
            CtlMsg::SnapifyRestoreReply {
                pid,
                ports,
                addr_table,
                breakdown,
                error,
            } => Enc::new()
                .tag(12)
                .u64(*pid)
                .u16(ports[0])
                .u16(ports[1])
                .u16(ports[2])
                .u16(ports[3])
                .list(addr_table, |e, (id, size, old, new)| {
                    e.u64(*id).u64(*size).u64(*old).u64(*new)
                })
                .u64(breakdown.0)
                .u64(breakdown.1)
                .u64(breakdown.2)
                .u64(breakdown.3)
                .string(error)
                .payload(),
        }
    }

    /// Decode from channel bytes.
    pub fn decode(p: &Payload) -> Result<CtlMsg, DecodeError> {
        let bytes = p.to_bytes();
        let mut d = Dec::new(&bytes);
        let msg = match d.tag()? {
            1 => CtlMsg::CreateProcess {
                host_pid: d.u64()?,
                binary: d.string()?,
            },
            2 => CtlMsg::CreateProcessReply {
                pid: d.u64()?,
                ports: [d.u16()?, d.u16()?, d.u16()?, d.u16()?],
            },
            3 => CtlMsg::DestroyProcess { pid: d.u64()? },
            4 => CtlMsg::DestroyAck,
            5 => CtlMsg::SnapifyPause {
                pid: d.u64()?,
                path: d.string()?,
            },
            6 => CtlMsg::SnapifyPauseComplete { ok: d.boolean()? },
            7 => CtlMsg::SnapifyCapture {
                pid: d.u64()?,
                path: d.string()?,
                terminate: d.boolean()?,
            },
            8 => CtlMsg::SnapifyCaptureComplete {
                ok: d.boolean()?,
                snapshot_bytes: d.u64()?,
            },
            9 => CtlMsg::SnapifyResume { pid: d.u64()? },
            10 => CtlMsg::SnapifyResumeComplete,
            11 => CtlMsg::SnapifyRestore {
                path: d.string()?,
                host_pid: d.u64()?,
            },
            12 => CtlMsg::SnapifyRestoreReply {
                pid: d.u64()?,
                ports: [d.u16()?, d.u16()?, d.u16()?, d.u16()?],
                addr_table: d.list(|d| Ok((d.u64()?, d.u64()?, d.u64()?, d.u64()?)))?,
                breakdown: (d.u64()?, d.u64()?, d.u64()?, d.u64()?),
                error: d.string()?,
            },
            t => return Err(DecodeError(format!("bad CtlMsg tag {t}"))),
        };
        Ok(msg)
    }
}

/// Host-client → offload-server command channel (SCIF use case 3).
#[derive(Clone, Debug, PartialEq)]
pub enum CmdMsg {
    /// Liveness probe.
    Ping,
    /// Reply to [`CmdMsg::Ping`].
    Pong,
    /// Create a COI buffer of `size` bytes with client-assigned `id`.
    CreateBuffer {
        /// Buffer id.
        id: u64,
        /// Buffer size in bytes.
        size: u64,
    },
    /// Reply: buffer created and registered for RDMA at `addr`.
    BufferCreated {
        /// Buffer id.
        id: u64,
        /// RDMA window address (0 = creation failed, see `error`).
        addr: u64,
        /// Error message, empty on success.
        error: String,
    },
    /// Destroy a COI buffer.
    DestroyBuffer {
        /// Buffer id.
        id: u64,
    },
    /// Reply to [`CmdMsg::DestroyBuffer`].
    BufferDestroyed {
        /// Buffer id.
        id: u64,
    },
    /// Snapify shutdown marker: no more commands until resume (§4.1
    /// case 3).
    Shutdown,
    /// Server acknowledgement of [`CmdMsg::Shutdown`].
    ShutdownAck,
}

impl CmdMsg {
    /// Encode for a SCIF message channel.
    pub fn encode(&self) -> Payload {
        match self {
            CmdMsg::Ping => Enc::new().tag(1).payload(),
            CmdMsg::Pong => Enc::new().tag(2).payload(),
            CmdMsg::CreateBuffer { id, size } => Enc::new().tag(3).u64(*id).u64(*size).payload(),
            CmdMsg::BufferCreated { id, addr, error } => Enc::new()
                .tag(4)
                .u64(*id)
                .u64(*addr)
                .string(error)
                .payload(),
            CmdMsg::DestroyBuffer { id } => Enc::new().tag(5).u64(*id).payload(),
            CmdMsg::BufferDestroyed { id } => Enc::new().tag(6).u64(*id).payload(),
            CmdMsg::Shutdown => Enc::new().tag(7).payload(),
            CmdMsg::ShutdownAck => Enc::new().tag(8).payload(),
        }
    }

    /// Decode from channel bytes.
    pub fn decode(p: &Payload) -> Result<CmdMsg, DecodeError> {
        let bytes = p.to_bytes();
        let mut d = Dec::new(&bytes);
        let msg = match d.tag()? {
            1 => CmdMsg::Ping,
            2 => CmdMsg::Pong,
            3 => CmdMsg::CreateBuffer {
                id: d.u64()?,
                size: d.u64()?,
            },
            4 => CmdMsg::BufferCreated {
                id: d.u64()?,
                addr: d.u64()?,
                error: d.string()?,
            },
            5 => CmdMsg::DestroyBuffer { id: d.u64()? },
            6 => CmdMsg::BufferDestroyed { id: d.u64()? },
            7 => CmdMsg::Shutdown,
            8 => CmdMsg::ShutdownAck,
            t => return Err(DecodeError(format!("bad CmdMsg tag {t}"))),
        };
        Ok(msg)
    }
}

/// Offload-client → host-server stream channels (COI events and logs —
/// the other half of SCIF use case 3).
#[derive(Clone, Debug, PartialEq)]
pub enum StreamMsg {
    /// One log/event record.
    Record(Vec<u8>),
    /// Snapify shutdown marker.
    Shutdown,
    /// Server acknowledgement of [`StreamMsg::Shutdown`].
    ShutdownAck,
}

impl StreamMsg {
    /// Encode for a SCIF message channel.
    pub fn encode(&self) -> Payload {
        match self {
            StreamMsg::Record(b) => Enc::new().tag(1).bytes(b).payload(),
            StreamMsg::Shutdown => Enc::new().tag(2).payload(),
            StreamMsg::ShutdownAck => Enc::new().tag(3).payload(),
        }
    }

    /// Decode from channel bytes.
    pub fn decode(p: &Payload) -> Result<StreamMsg, DecodeError> {
        let bytes = p.to_bytes();
        let mut d = Dec::new(&bytes);
        let msg = match d.tag()? {
            1 => StreamMsg::Record(d.bytes()?),
            2 => StreamMsg::Shutdown,
            3 => StreamMsg::ShutdownAck,
            t => return Err(DecodeError(format!("bad StreamMsg tag {t}"))),
        };
        Ok(msg)
    }
}

/// The offload-function pipeline channel (SCIF use case 4, Fig 4).
#[derive(Clone, Debug, PartialEq)]
pub enum RunMsg {
    /// Run `function` with `args` against `buffers`.
    Request {
        /// Run id (host-assigned, echoed in the result).
        id: u64,
        /// Offload function name (must exist in the device binary).
        function: String,
        /// Misc argument bytes.
        args: Vec<u8>,
        /// Buffer ids passed to the function.
        buffers: Vec<u64>,
    },
    /// Function completed with a return value.
    Result {
        /// Run id.
        id: u64,
        /// Return value bytes.
        ret: Vec<u8>,
    },
    /// Function failed.
    Error {
        /// Run id.
        id: u64,
        /// Error description.
        message: String,
    },
}

impl RunMsg {
    /// Encode for a SCIF message channel.
    pub fn encode(&self) -> Payload {
        match self {
            RunMsg::Request {
                id,
                function,
                args,
                buffers,
            } => Enc::new()
                .tag(1)
                .u64(*id)
                .string(function)
                .bytes(args)
                .list(buffers, |e, b| e.u64(*b))
                .payload(),
            RunMsg::Result { id, ret } => Enc::new().tag(2).u64(*id).bytes(ret).payload(),
            RunMsg::Error { id, message } => Enc::new().tag(3).u64(*id).string(message).payload(),
        }
    }

    /// Decode from channel bytes.
    pub fn decode(p: &Payload) -> Result<RunMsg, DecodeError> {
        let bytes = p.to_bytes();
        let mut d = Dec::new(&bytes);
        let msg = match d.tag()? {
            1 => RunMsg::Request {
                id: d.u64()?,
                function: d.string()?,
                args: d.bytes()?,
                buffers: d.list(|d| d.u64())?,
            },
            2 => RunMsg::Result {
                id: d.u64()?,
                ret: d.bytes()?,
            },
            3 => RunMsg::Error {
                id: d.u64()?,
                message: d.string()?,
            },
            t => return Err(DecodeError(format!("bad RunMsg tag {t}"))),
        };
        Ok(msg)
    }
}

/// Daemon ↔ offload-process pipe protocol (Fig 3). These travel over a
/// local (same-node) channel, not SCIF.
#[derive(Clone, Debug, PartialEq)]
pub enum PipeMsg {
    /// Daemon → offload: begin the pause (drain + save local store to
    /// `path`).
    PauseReq {
        /// Host snapshot directory.
        path: String,
    },
    /// Offload → daemon: handshake acknowledgement (Fig 3 step 2).
    PauseAck,
    /// Offload → daemon: channels drained, local store saved.
    PauseComplete {
        /// Whether the pause succeeded.
        ok: bool,
    },
    /// Daemon → offload: capture a snapshot into `path`.
    CaptureReq {
        /// Host snapshot directory.
        path: String,
        /// Exit after capturing.
        terminate: bool,
    },
    /// Offload → daemon: snapshot written.
    CaptureComplete {
        /// Whether the capture succeeded.
        ok: bool,
        /// Device snapshot size in bytes.
        snapshot_bytes: u64,
    },
    /// Daemon → offload: release all locks and resume.
    ResumeReq,
    /// Offload → daemon: resumed.
    ResumeAck,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctl_roundtrip() {
        let msgs = vec![
            CtlMsg::CreateProcess {
                host_pid: 7,
                binary: "md.so".into(),
            },
            CtlMsg::CreateProcessReply {
                pid: 9,
                ports: [1, 2, 3, 4],
            },
            CtlMsg::DestroyProcess { pid: 9 },
            CtlMsg::DestroyAck,
            CtlMsg::SnapifyPause {
                pid: 9,
                path: "/snap".into(),
            },
            CtlMsg::SnapifyPauseComplete { ok: true },
            CtlMsg::SnapifyCapture {
                pid: 9,
                path: "/snap".into(),
                terminate: false,
            },
            CtlMsg::SnapifyCaptureComplete {
                ok: true,
                snapshot_bytes: 12345,
            },
            CtlMsg::SnapifyResume { pid: 9 },
            CtlMsg::SnapifyResumeComplete,
            CtlMsg::SnapifyRestore {
                path: "/snap".into(),
                host_pid: 7,
            },
            CtlMsg::SnapifyRestoreReply {
                pid: 10,
                ports: [5, 6, 7, 8],
                addr_table: vec![(0, 4096, 0x1000, 0x2000), (1, 8192, 0x3000, 0x4000)],
                breakdown: (1, 2, 3, 4),
                error: String::new(),
            },
        ];
        for m in msgs {
            assert_eq!(CtlMsg::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn cmd_roundtrip() {
        let msgs = vec![
            CmdMsg::Ping,
            CmdMsg::Pong,
            CmdMsg::CreateBuffer {
                id: 3,
                size: 1 << 20,
            },
            CmdMsg::BufferCreated {
                id: 3,
                addr: 0x5000,
                error: String::new(),
            },
            CmdMsg::BufferCreated {
                id: 4,
                addr: 0,
                error: "oom".into(),
            },
            CmdMsg::DestroyBuffer { id: 3 },
            CmdMsg::BufferDestroyed { id: 3 },
            CmdMsg::Shutdown,
            CmdMsg::ShutdownAck,
        ];
        for m in msgs {
            assert_eq!(CmdMsg::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn stream_and_run_roundtrip() {
        for m in [
            StreamMsg::Record(vec![1, 2, 3]),
            StreamMsg::Shutdown,
            StreamMsg::ShutdownAck,
        ] {
            assert_eq!(StreamMsg::decode(&m.encode()).unwrap(), m);
        }
        for m in [
            RunMsg::Request {
                id: 1,
                function: "lj_step".into(),
                args: vec![9, 9],
                buffers: vec![0, 1, 2],
            },
            RunMsg::Result {
                id: 1,
                ret: vec![5],
            },
            RunMsg::Error {
                id: 2,
                message: "no such function".into(),
            },
        ] {
            assert_eq!(RunMsg::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(CtlMsg::decode(&Payload::bytes(vec![99])).is_err());
        assert!(CmdMsg::decode(&Payload::bytes(vec![])).is_err());
        assert!(RunMsg::decode(&Payload::bytes(vec![1, 2])).is_err());
    }
}
