//! Drain locks: the mutexes Snapify adds around COI's SCIF use sites.
//!
//! §4.1 describes four drain methods; all of them hinge on mutex locks
//! that `snapify_pause` *acquires and holds until `snapify_resume`* —
//! across many function calls and even across processes' protocol turns.
//! RAII guards are the wrong shape for that, so [`DrainLock`] is an
//! explicit acquire/release lock (still virtual-time-blocking and FIFO-
//! fair via the underlying primitives).

use simkernel::{SimCondvar, SimDuration, SimMutex};

/// An explicitly released, virtual-time mutex used at COI's SCIF call
/// sites.
pub struct DrainLock {
    state: SimMutex<bool>,
    cv: SimCondvar,
    name: String,
}

impl DrainLock {
    /// New unlocked lock.
    pub fn new(name: impl Into<String>) -> DrainLock {
        let name = name.into();
        DrainLock {
            state: SimMutex::new(format!("drain '{name}'"), false),
            cv: SimCondvar::new(format!("drain '{name}'")),
            name,
        }
    }

    /// Acquire, blocking in virtual time.
    pub fn acquire(&self) {
        let mut held = self.state.lock();
        while *held {
            held = self.cv.wait(held);
        }
        *held = true;
    }

    /// Try to acquire without blocking.
    pub fn try_acquire(&self) -> bool {
        let mut held = self.state.lock();
        if *held {
            false
        } else {
            *held = true;
            true
        }
    }

    /// Acquire, polling so the wait can be abandoned when `abort()` turns
    /// true (used by offload threads so a terminated process never leaves
    /// a thread blocked forever). Returns whether the lock was acquired.
    pub fn acquire_unless(&self, poll: SimDuration, abort: impl Fn() -> bool) -> bool {
        loop {
            if self.try_acquire() {
                return true;
            }
            if abort() {
                return false;
            }
            simkernel::sleep(poll);
        }
    }

    /// Release. Panics if not held (protocol bug).
    pub fn release(&self) {
        let mut held = self.state.lock();
        assert!(*held, "releasing unheld drain lock '{}'", self.name);
        *held = false;
        drop(held);
        self.cv.notify_one();
    }

    /// Release if held (idempotent cleanup).
    pub fn release_if_held(&self) {
        let mut held = self.state.lock();
        if *held {
            *held = false;
            drop(held);
            self.cv.notify_one();
        }
    }

    /// Whether the lock is currently held.
    pub fn is_held(&self) -> bool {
        *self.state.lock()
    }

    /// Run `f` with the lock held (RAII-style convenience for the common
    /// per-operation case).
    pub fn with<T>(&self, f: impl FnOnce() -> T) -> T {
        self.acquire();
        let out = f();
        self.release();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::time::ms;
    use simkernel::{now, sleep, spawn, Kernel, SimTime};
    use std::sync::Arc;

    #[test]
    fn acquire_release_cycle() {
        Kernel::run_root(|| {
            let l = DrainLock::new("t");
            assert!(!l.is_held());
            l.acquire();
            assert!(l.is_held());
            assert!(!l.try_acquire());
            l.release();
            assert!(l.try_acquire());
            l.release();
        });
    }

    #[test]
    fn contended_acquire_blocks_in_virtual_time() {
        Kernel::run_root(|| {
            let l = Arc::new(DrainLock::new("t"));
            l.acquire();
            let l2 = Arc::clone(&l);
            let h = spawn("waiter", move || {
                l2.acquire();
                let t = now();
                l2.release();
                t
            });
            sleep(ms(30));
            l.release();
            assert_eq!(h.join(), SimTime::ZERO + ms(30));
        });
    }

    #[test]
    fn acquire_unless_aborts() {
        Kernel::run_root(|| {
            let l = Arc::new(DrainLock::new("t"));
            l.acquire();
            let l2 = Arc::clone(&l);
            let h = spawn("poller", move || {
                // Aborts once virtual time passes 5 ms.
                l2.acquire_unless(ms(1), || now() >= SimTime::ZERO + ms(5))
            });
            assert!(!h.join());
            l.release();
        });
    }

    #[test]
    fn with_releases_on_exit() {
        Kernel::run_root(|| {
            let l = DrainLock::new("t");
            let v = l.with(|| 42);
            assert_eq!(v, 42);
            assert!(!l.is_held());
        });
    }

    #[test]
    #[should_panic(expected = "releasing unheld")]
    fn double_release_panics() {
        Kernel::run_root(|| {
            let l = DrainLock::new("t");
            l.release();
        });
    }

    #[test]
    fn release_if_held_is_idempotent() {
        Kernel::run_root(|| {
            let l = DrainLock::new("t");
            l.release_if_held();
            l.acquire();
            l.release_if_held();
            assert!(!l.is_held());
        });
    }
}
