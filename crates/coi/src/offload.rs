//! The offload process runtime: the device side of COI, with the Snapify
//! modifications.
//!
//! One [`OffloadRuntime`] drives one offload process (`offload_proc` in
//! Fig 1). Its threads mirror the real COI process:
//!
//! * a **run receiver** and an **executor** implementing the offload
//!   pipeline (Fig 4's `Pipe_Thread2`);
//! * a **command server** (buffer management — SCIF use case 3, server
//!   side);
//! * **log and event clients** shipping records to host-side server
//!   threads (use case 3, client side);
//! * a transient **pipe handler** spawned by the Snapify signal, which
//!   runs the offload half of pause / capture / resume (Fig 3).
//!
//! # Snapshot-ability
//!
//! Everything the executor may be doing is recorded in [`PipelineState`]
//! *before* any blocking operation: queued requests live in the state's
//! queue (not in a channel), an executing run carries its step cursor, and
//! a finished-but-unsent result is `ResultPending`. The capture path
//! therefore only needs to (a) park the executor at a step boundary and
//! (b) serialize the state — every in-flight intention is recoverable.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use blcr_sim::BlcrConfig;
use phi_platform::{NodeId, Payload, SimNode};
use scif_sim::{RdmaAddr, Scif, ScifEndpoint};
use simkernel::obs;
use simkernel::{SimChannel, SimCondvar, SimMutex};
use simproc::{signum, PidAllocator, Signals, SimProcess};

use crate::binary::{DeviceBinary, FunctionRegistry, OffloadCtx, StepOutcome};
use crate::config::CoiConfig;
use crate::locks::DrainLock;
use crate::msgs::{CmdMsg, PipeMsg, RunMsg, StreamMsg};
use crate::storage::SnapshotStorage;
use crate::wire::{Dec, Enc};
use crate::CoiError;

/// Chunk size used when streaming local stores and snapshots.
pub const IO_CHUNK: u64 = 4 << 20;

/// Region-name prefix of COI buffer backing stores (excluded from the
/// BLCR process image; saved separately as the local store).
pub const BUF_REGION_PREFIX: &str = "coi_buf_";

fn buf_region(id: u64) -> String {
    format!("{BUF_REGION_PREFIX}{id}")
}

/// RDMA address translation entries: `(buffer id, size, old, new)`.
pub type AddrTable = Vec<(u64, u64, u64, u64)>;

/// Timing breakdown of an offload-process restore (§4.3), in nanoseconds
/// of virtual time. Carried back to the host in the restore reply so
/// Fig 10(c)'s stacked bars can be reported per phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RestoreBreakdown {
    /// Copying the runtime libraries to the coprocessor.
    pub library_copy_ns: u64,
    /// Copying the local store (COI buffer files) to the coprocessor.
    pub store_copy_ns: u64,
    /// BLCR restart of the process image.
    pub blcr_restart_ns: u64,
    /// Buffer re-mapping + RDMA re-registration.
    pub reregistration_ns: u64,
}

/// The daemon ↔ offload-process pipe (a pair of local channels).
#[derive(Clone)]
pub struct SnapifyPipe {
    /// Daemon → offload direction.
    pub to_offload: SimChannel<PipeMsg>,
    /// Offload → daemon direction.
    pub to_daemon: SimChannel<PipeMsg>,
}

impl SnapifyPipe {
    /// Create a pipe pair.
    pub fn new(pid: u64) -> SnapifyPipe {
        SnapifyPipe {
            to_offload: SimChannel::unbounded(format!("pipe-d2o-{pid}")),
            to_daemon: SimChannel::unbounded(format!("pipe-o2d-{pid}")),
        }
    }
}

/// One queued offload-function invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRequest {
    /// Host-assigned run id.
    pub id: u64,
    /// Function name.
    pub function: String,
    /// Misc argument bytes.
    pub args: Vec<u8>,
    /// Buffer ids.
    pub buffers: Vec<u64>,
}

/// Execution phase of the active run.
#[derive(Clone, Debug, PartialEq)]
pub enum RunPhase {
    /// Executing; the cursor counts completed steps.
    Executing(u64),
    /// Finished; the result has not yet been sent to the host.
    ResultPending(Result<Vec<u8>, String>),
}

#[derive(Clone, Debug)]
struct ActiveRun {
    req: RunRequest,
    phase: RunPhase,
}

/// The snapshot-able pipeline state.
pub struct PipelineState {
    queue: VecDeque<RunRequest>,
    active: Option<ActiveRun>,
    /// Requests moved from the run channel into `queue` (matched against
    /// the channel's receive counter to prove nothing is in flight).
    enqueued: u64,
    /// Capture barrier: the executor parks at the next step boundary.
    barrier: bool,
    /// Whether the executor is parked at the barrier.
    parked: bool,
}

struct BufMeta {
    size: u64,
    addr: RdmaAddr,
}

struct Endpoints {
    run: ScifEndpoint,
    cmd: ScifEndpoint,
    log: ScifEndpoint,
    event: ScifEndpoint,
}

struct Inner {
    config: CoiConfig,
    blcr: BlcrConfig,
    scif: Scif,
    node: SimNode,
    proc: SimProcess,
    binary: Arc<DeviceBinary>,
    host_pid: u64,
    storage: Arc<dyn SnapshotStorage>,

    pstate: SimMutex<PipelineState>,
    pcv: SimCondvar,

    eps: SimMutex<Option<Endpoints>>,
    log_q: SimChannel<Vec<u8>>,
    event_q: SimChannel<Vec<u8>>,

    log_lock: DrainLock,
    event_lock: DrainLock,
    result_lock: DrainLock,

    buffers: SimMutex<BTreeMap<u64, BufMeta>>,
    terminated: SimMutex<bool>,
    signals: Signals,
    pipe: SimMutex<Option<SnapifyPipe>>,
}

/// Handle to an offload process runtime. Cheap to clone.
#[derive(Clone)]
pub struct OffloadRuntime {
    inner: Arc<Inner>,
}

impl OffloadRuntime {
    /// Create a fresh offload process for `host_pid` on `node`, running
    /// `binary`. Returns the runtime and the four SCIF ports
    /// (run/cmd/log/event) the host must connect to.
    #[allow(clippy::too_many_arguments)]
    pub fn launch(
        config: &CoiConfig,
        blcr: &BlcrConfig,
        scif: &Scif,
        node: &SimNode,
        pids: &PidAllocator,
        binary: Arc<DeviceBinary>,
        host_pid: u64,
        storage: Arc<dyn SnapshotStorage>,
        signal_latency: simkernel::SimDuration,
    ) -> Result<(OffloadRuntime, [u16; 4]), CoiError> {
        let proc = SimProcess::new(pids.alloc(), format!("offload:{}", binary.name()), node);
        proc.memory()
            .map_region("base", Payload::synthetic(0xBA5E, binary.resident_bytes))
            .map_err(|e| CoiError::OutOfMemory(e.to_string()))?;
        let rt = Self::build(
            config,
            blcr,
            scif,
            node,
            proc,
            binary,
            host_pid,
            storage,
            signal_latency,
            PipelineState {
                queue: VecDeque::new(),
                active: None,
                enqueued: 0,
                barrier: false,
                parked: false,
            },
            BTreeMap::new(),
        );
        let ports = rt.open_ports();
        Ok((rt, ports))
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        config: &CoiConfig,
        blcr: &BlcrConfig,
        scif: &Scif,
        node: &SimNode,
        proc: SimProcess,
        binary: Arc<DeviceBinary>,
        host_pid: u64,
        storage: Arc<dyn SnapshotStorage>,
        signal_latency: simkernel::SimDuration,
        pstate: PipelineState,
        buffers: BTreeMap<u64, BufMeta>,
    ) -> OffloadRuntime {
        let pid = proc.pid();
        let rt = OffloadRuntime {
            inner: Arc::new(Inner {
                config: config.clone(),
                blcr: blcr.clone(),
                scif: scif.clone(),
                node: node.clone(),
                binary,
                host_pid,
                storage,
                pstate: SimMutex::new(format!("pipeline {pid}"), pstate),
                pcv: SimCondvar::new(format!("pipeline {pid}")),
                eps: SimMutex::new(format!("eps {pid}"), None),
                log_q: SimChannel::unbounded(format!("logq {pid}")),
                event_q: SimChannel::unbounded(format!("eventq {pid}")),
                log_lock: DrainLock::new(format!("log-client {pid}")),
                event_lock: DrainLock::new(format!("event-client {pid}")),
                result_lock: DrainLock::new(format!("result-send {pid}")),
                buffers: SimMutex::new(format!("buffers {pid}"), buffers),
                terminated: SimMutex::new(format!("terminated {pid}"), false),
                signals: Signals::new(&format!("{pid}"), signal_latency),
                pipe: SimMutex::new(format!("pipe {pid}"), None),
                proc,
            }),
        };
        // The Snapify signal spawns the pipe handler (Fig 3 step 2).
        let rt2 = rt.clone();
        rt.inner.signals.register(signum::SIGSNAPIFY, move || {
            let rt3 = rt2.clone();
            rt2.inner.proc.spawn_service("snapify-pipe", move || {
                rt3.pipe_handler();
            });
        });
        rt
    }

    /// Bind four ephemeral ports and start the runtime's threads once the
    /// host has connected to each.
    fn open_ports(&self) -> [u16; 4] {
        let scif = &self.inner.scif;
        let node = self.inner.node.id();
        let ports = [
            scif.ephemeral_port(),
            scif.ephemeral_port(),
            scif.ephemeral_port(),
            scif.ephemeral_port(),
        ];
        let listeners: Vec<_> = ports.iter().map(|p| scif.listen(node, *p)).collect();
        let rt = self.clone();
        self.inner.proc.spawn_service("acceptor", move || {
            let mut eps = Vec::new();
            for l in &listeners {
                match l.accept() {
                    Ok(ep) => eps.push(ep),
                    Err(_) => return,
                }
            }
            for l in &listeners {
                l.close();
            }
            let endpoints = Endpoints {
                run: eps[0].clone(),
                cmd: eps[1].clone(),
                log: eps[2].clone(),
                event: eps[3].clone(),
            };
            *rt.inner.eps.lock() = Some(endpoints);
            rt.start_threads();
        });
        ports
    }

    fn start_threads(&self) {
        let rt = self.clone();
        self.inner
            .proc
            .spawn_service("run-recv", move || rt.run_receiver());
        let rt = self.clone();
        self.inner
            .proc
            .spawn_service("executor", move || rt.executor());
        let rt = self.clone();
        self.inner
            .proc
            .spawn_service("cmd-server", move || rt.cmd_server());
        let rt = self.clone();
        self.inner.proc.spawn_service("log-client", move || {
            rt.stream_client(true);
        });
        let rt = self.clone();
        self.inner.proc.spawn_service("event-client", move || {
            rt.stream_client(false);
        });
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The offload process.
    pub fn proc(&self) -> &SimProcess {
        &self.inner.proc
    }

    /// The node the process runs on.
    pub fn node(&self) -> &SimNode {
        &self.inner.node
    }

    /// The device binary.
    pub fn binary(&self) -> &Arc<DeviceBinary> {
        &self.inner.binary
    }

    /// Owning host process id.
    pub fn host_pid(&self) -> u64 {
        self.inner.host_pid
    }

    /// The process's signal table (the daemon signals through this).
    pub fn signals(&self) -> &Signals {
        &self.inner.signals
    }

    /// Install the daemon's pipe (before signalling).
    pub fn install_pipe(&self, pipe: SnapifyPipe) {
        *self.inner.pipe.lock() = Some(pipe);
    }

    /// Whether the runtime has been terminated.
    pub fn is_terminated(&self) -> bool {
        *self.inner.terminated.lock()
    }

    /// Total bytes of local store (all COI buffers).
    pub fn local_store_bytes(&self) -> u64 {
        self.inner.buffers.lock().values().map(|b| b.size).sum()
    }

    /// Device-snapshot size a capture would produce right now.
    pub fn snapshot_size(&self) -> u64 {
        let state_len = self.serialize_state().len() as u64;
        blcr_sim::image_size_filtered(&self.inner.blcr, &self.inner.proc, state_len, &|n| {
            !n.starts_with(BUF_REGION_PREFIX)
        })
    }

    /// True if every SCIF channel of this process is empty in both
    /// directions *and* every received run request is recorded in the
    /// pipeline state — the consistency predicate of §3.
    pub fn channels_drained(&self) -> bool {
        let eps = self.inner.eps.lock();
        let Some(eps) = eps.as_ref() else {
            return true;
        };
        let st = self.inner.pstate.lock();
        let (_, received) = eps.run.inbound_stats();
        eps.run.inbound_pending() == 0
            && eps.run.outbound_pending() == 0
            && eps.cmd.inbound_pending() == 0
            && eps.cmd.outbound_pending() == 0
            && eps.log.inbound_pending() == 0
            && eps.log.outbound_pending() == 0
            && eps.event.inbound_pending() == 0
            && eps.event.outbound_pending() == 0
            && received == st.enqueued
    }

    /// Digest over the process's private (non-buffer) memory image.
    pub fn private_digest(&self) -> u64 {
        let mut combined = Payload::empty();
        for (name, content) in self.inner.proc.memory().snapshot_regions() {
            if !name.starts_with(BUF_REGION_PREFIX) {
                combined.append(Payload::bytes(name.as_bytes().to_vec()));
                combined.append(content);
            }
        }
        combined.digest()
    }

    /// Digest over the local store (buffer contents, by id).
    pub fn local_store_digest(&self) -> u64 {
        let bufs = self.inner.buffers.lock();
        let mut combined = Payload::empty();
        for (id, _) in bufs.iter() {
            combined.append(Payload::bytes(id.to_le_bytes().to_vec()));
            combined.append(
                self.inner
                    .proc
                    .memory()
                    .region(&buf_region(*id))
                    .expect("buffer table entry implies a backing region"),
            );
        }
        combined.digest()
    }

    // ------------------------------------------------------------------
    // Buffer plumbing (used by OffloadCtx and the cmd server)
    // ------------------------------------------------------------------

    pub(crate) fn buffer_payload(&self, id: u64) -> Payload {
        self.inner
            .proc
            .memory()
            .region(&buf_region(id))
            .expect("buffer table entry implies a backing region")
    }

    pub(crate) fn buffer_store(&self, id: u64, data: Payload) {
        let expected = self.inner.buffers.lock().get(&id).map(|b| b.size);
        let expected = expected.unwrap_or_else(|| panic!("no buffer {id}"));
        assert_eq!(data.len(), expected, "buffer {id} write must match size");
        self.inner
            .proc
            .memory()
            .update_region(&buf_region(id), data)
            .expect("same-size buffer update cannot OOM");
    }

    pub(crate) fn enqueue_log(&self, rec: Vec<u8>) {
        let _ = self.inner.log_q.try_send(rec);
    }

    fn enqueue_event(&self, rec: Vec<u8>) {
        let _ = self.inner.event_q.try_send(rec);
    }

    // ------------------------------------------------------------------
    // Worker threads
    // ------------------------------------------------------------------

    fn run_receiver(&self) {
        loop {
            let ep = match self.inner.eps.lock().as_ref() {
                Some(e) => e.run.clone(),
                None => return,
            };
            let payload = match ep.recv() {
                Ok(p) => p,
                Err(_) => return,
            };
            match RunMsg::decode(&payload) {
                Ok(RunMsg::Request {
                    id,
                    function,
                    args,
                    buffers,
                }) => {
                    let mut st = self.inner.pstate.lock();
                    st.queue.push_back(RunRequest {
                        id,
                        function,
                        args,
                        buffers,
                    });
                    st.enqueued += 1;
                    drop(st);
                    self.inner.pcv.notify_all();
                }
                _ => { /* results/errors never flow host→offload */ }
            }
        }
    }

    fn executor(&self) {
        loop {
            // Acquire work (or park at the barrier).
            let work = {
                let mut st = self.inner.pstate.lock();
                loop {
                    if self.is_terminated() {
                        return;
                    }
                    if st.barrier {
                        st.parked = true;
                        self.inner.pcv.notify_all();
                        while st.barrier && !self.is_terminated() {
                            st = self.inner.pcv.wait(st);
                        }
                        st.parked = false;
                        continue;
                    }
                    if st.active.is_some() {
                        break;
                    }
                    if let Some(req) = st.queue.pop_front() {
                        st.active = Some(ActiveRun {
                            req,
                            phase: RunPhase::Executing(0),
                        });
                        break;
                    }
                    st = self.inner.pcv.wait(st);
                }
                st.active.clone().unwrap()
            };
            match work.phase {
                RunPhase::Executing(cursor) => self.execute(work.req, cursor),
                RunPhase::ResultPending(ret) => self.send_result(work.req.id, ret),
            }
        }
    }

    fn execute(&self, req: RunRequest, start_cursor: u64) {
        let func = self.inner.binary.get(&req.function);
        let Some(func) = func else {
            let mut st = self.inner.pstate.lock();
            if let Some(a) = st.active.as_mut() {
                a.phase =
                    RunPhase::ResultPending(Err(format!("no such function '{}'", req.function)));
            }
            drop(st);
            self.inner.pcv.notify_all();
            return;
        };
        let mut cursor = start_cursor;
        loop {
            // Step boundary: honour the capture barrier and termination.
            {
                let mut st = self.inner.pstate.lock();
                if self.is_terminated() {
                    return;
                }
                if st.barrier {
                    st.parked = true;
                    self.inner.pcv.notify_all();
                    while st.barrier && !self.is_terminated() {
                        st = self.inner.pcv.wait(st);
                    }
                    st.parked = false;
                    if self.is_terminated() {
                        return;
                    }
                }
            }
            let mut ctx = OffloadCtx {
                rt: self,
                args: req.args.clone(),
                buffers: req.buffers.clone(),
            };
            match func.step(&mut ctx, cursor) {
                StepOutcome::Yield => {
                    cursor += 1;
                    let mut st = self.inner.pstate.lock();
                    if let Some(a) = st.active.as_mut() {
                        a.phase = RunPhase::Executing(cursor);
                    }
                }
                StepOutcome::Done(ret) => {
                    let mut st = self.inner.pstate.lock();
                    if let Some(a) = st.active.as_mut() {
                        a.phase = RunPhase::ResultPending(Ok(ret));
                    }
                    drop(st);
                    self.inner.pcv.notify_all();
                    return;
                }
            }
        }
    }

    fn send_result(&self, id: u64, ret: Result<Vec<u8>, String>) {
        // §4.1 case 4: the result send is blocking and inside a critical
        // region; pause holds this lock until resume.
        if !self
            .inner
            .result_lock
            .acquire_unless(self.inner.config.poll_interval, || self.is_terminated())
        {
            return;
        }
        self.inner.config.charge_hook();
        let ep = self.inner.eps.lock().as_ref().map(|e| e.run.clone());
        if let Some(ep) = ep {
            let msg = match &ret {
                Ok(r) => RunMsg::Result { id, ret: r.clone() },
                Err(m) => RunMsg::Error {
                    id,
                    message: m.clone(),
                },
            };
            let _ = ep.send(msg.encode());
        }
        self.inner.result_lock.release();
        {
            let mut st = self.inner.pstate.lock();
            st.active = None;
        }
        self.inner.pcv.notify_all();
        self.enqueue_event(format!("run:{id}:done").into_bytes());
        self.enqueue_log(format!("offload function {id} completed").into_bytes());
    }

    fn cmd_server(&self) {
        let ep = match self.inner.eps.lock().as_ref() {
            Some(e) => e.cmd.clone(),
            None => return,
        };
        loop {
            let payload = match ep.recv() {
                Ok(p) => p,
                Err(_) => return,
            };
            let msg = match CmdMsg::decode(&payload) {
                Ok(m) => m,
                Err(_) => continue,
            };
            match msg {
                CmdMsg::Ping => {
                    let _ = ep.send(CmdMsg::Pong.encode());
                }
                CmdMsg::CreateBuffer { id, size } => {
                    let reply = match self
                        .inner
                        .proc
                        .memory()
                        .map_region(&buf_region(id), Payload::synthetic(0, size))
                    {
                        Ok(()) => {
                            let addr = self.inner.scif.register(&self.inner.proc, &buf_region(id));
                            self.inner.buffers.lock().insert(id, BufMeta { size, addr });
                            self.enqueue_event(format!("buffer:{id}:created").into_bytes());
                            CmdMsg::BufferCreated {
                                id,
                                addr: addr.0,
                                error: String::new(),
                            }
                        }
                        Err(oom) => CmdMsg::BufferCreated {
                            id,
                            addr: 0,
                            error: oom.to_string(),
                        },
                    };
                    let _ = ep.send(reply.encode());
                }
                CmdMsg::DestroyBuffer { id } => {
                    if let Some(meta) = self.inner.buffers.lock().remove(&id) {
                        self.inner.scif.unregister(meta.addr);
                        self.inner
                            .proc
                            .memory()
                            .unmap_region(&buf_region(id))
                            .expect("buffer table entry implies a backing region");
                        self.enqueue_event(format!("buffer:{id}:destroyed").into_bytes());
                    }
                    let _ = ep.send(CmdMsg::BufferDestroyed { id }.encode());
                }
                CmdMsg::Shutdown => {
                    // §4.1 case 3 marker: ack and go quiet (the client lock
                    // guarantees nothing follows until resume).
                    let _ = ep.send(CmdMsg::ShutdownAck.encode());
                }
                _ => {}
            }
        }
    }

    /// Log (`is_log`) or event client: drains the local queue into the
    /// SCIF channel under the channel's client lock.
    fn stream_client(&self, is_log: bool) {
        let q = if is_log {
            &self.inner.log_q
        } else {
            &self.inner.event_q
        };
        let lock = if is_log {
            &self.inner.log_lock
        } else {
            &self.inner.event_lock
        };
        loop {
            let rec = match q.recv() {
                Ok(r) => r,
                Err(_) => return,
            };
            let ep = {
                let eps = self.inner.eps.lock();
                match eps.as_ref() {
                    Some(e) => {
                        if is_log {
                            e.log.clone()
                        } else {
                            e.event.clone()
                        }
                    }
                    None => return,
                }
            };
            if !lock.acquire_unless(self.inner.config.poll_interval, || self.is_terminated()) {
                return;
            }
            self.inner.config.charge_hook();
            let _ = ep.send(StreamMsg::Record(rec).encode());
            lock.release();
        }
    }

    // ------------------------------------------------------------------
    // Snapify: the offload half of pause / capture / resume (Fig 3)
    // ------------------------------------------------------------------

    fn pipe_handler(&self) {
        let pipe = match self.inner.pipe.lock().clone() {
            Some(p) => p,
            None => return,
        };
        // Fig 3 step 2: acknowledge the daemon's handshake.
        let _ = pipe.to_daemon.send(PipeMsg::PauseAck);
        loop {
            match pipe.to_offload.recv() {
                Ok(PipeMsg::PauseReq { path }) => {
                    let ok = self.do_pause(&path);
                    let _ = pipe.to_daemon.send(PipeMsg::PauseComplete { ok });
                }
                Ok(PipeMsg::CaptureReq { path, terminate }) => {
                    let result = self.do_capture(&path, terminate);
                    let (ok, bytes) = match result {
                        Ok(b) => (true, b),
                        Err(_) => (false, 0),
                    };
                    let _ = pipe.to_daemon.send(PipeMsg::CaptureComplete {
                        ok,
                        snapshot_bytes: bytes,
                    });
                    if terminate && ok {
                        self.release_pause_locks();
                        self.terminate();
                        return;
                    }
                }
                Ok(PipeMsg::ResumeReq) => {
                    self.release_pause_locks();
                    {
                        let mut st = self.inner.pstate.lock();
                        st.barrier = false;
                    }
                    self.inner.pcv.notify_all();
                    let _ = pipe.to_daemon.send(PipeMsg::ResumeAck);
                    *self.inner.pipe.lock() = None;
                    return;
                }
                Ok(_) | Err(_) => return,
            }
        }
    }

    /// Drain the offload side: quiesce the stream clients (case 3), block
    /// result sends and wait for the pipeline channels to empty (case 4),
    /// then save the local store to the host snapshot directory.
    fn do_pause(&self, path: &str) -> bool {
        let _span = obs::span!("coi.pause", path = path);
        let eps = match self.inner.eps.lock().as_ref() {
            Some(e) => Endpoints {
                run: e.run.clone(),
                cmd: e.cmd.clone(),
                log: e.log.clone(),
                event: e.event.clone(),
            },
            None => return false,
        };
        // Case 3, offload-client channels: lock out the clients and send
        // the shutdown marker; the host-side server acks when it has seen
        // it, proving the channel carries nothing after the marker.
        let drain_span = obs::span!("coi.pause.drain");
        for (lock, ep) in [
            (&self.inner.log_lock, &eps.log),
            (&self.inner.event_lock, &eps.event),
        ] {
            lock.acquire();
            self.inner.config.charge_hook();
            if ep.send(StreamMsg::Shutdown.encode()).is_err() {
                return false;
            }
            loop {
                match ep.recv() {
                    Ok(p) => match StreamMsg::decode(&p) {
                        Ok(StreamMsg::ShutdownAck) => break,
                        _ => continue,
                    },
                    Err(_) => return false,
                }
            }
        }
        // Case 4: no result may be sent until resume.
        self.inner.result_lock.acquire();
        // Wait until every run request the host sent is recorded in the
        // pipeline state (channel empty + receiver idle).
        loop {
            let (_, received) = eps.run.inbound_stats();
            let enq = self.inner.pstate.lock().enqueued;
            if eps.run.inbound_pending() == 0 && received == enq {
                break;
            }
            simkernel::sleep(self.inner.config.poll_interval);
        }
        // Wait until previously-sent results have landed at the host.
        while eps.run.outbound_pending() > 0 {
            simkernel::sleep(self.inner.config.poll_interval);
        }
        drop(drain_span);
        // Park the executor at a step boundary before touching the local
        // store: otherwise a running offload function could keep mutating
        // COI buffers after their contents were saved, making the local
        // store inconsistent with the later process snapshot. The barrier
        // stays up until resume ("resume the ... partially-blocked
        // execution", §4.2).
        self.park_executor();
        // Save the local store "on the fly" to the host (§4.1; the bars
        // labelled Pause in Fig 10 are dominated by this for SS/SG).
        let _save = obs::span!("coi.pause.save_store");
        self.save_local_store(path).is_ok()
    }

    fn save_local_store(&self, path: &str) -> Result<(), CoiError> {
        let bufs: Vec<(u64, u64, RdmaAddr)> = {
            let b = self.inner.buffers.lock();
            b.iter().map(|(id, m)| (*id, m.size, m.addr)).collect()
        };
        // Manifest: binary name + (id, size, old RDMA address) triples.
        let manifest = Enc::new()
            .string(self.inner.binary.name())
            .u64(self.inner.host_pid)
            .list(&bufs, |e, (id, size, addr)| {
                e.u64(*id).u64(*size).u64(addr.0)
            })
            .into_bytes();
        let mut sink = self
            .inner
            .storage
            .sink(
                self.inner.node.id(),
                &format!("{path}/local_store/manifest"),
            )
            .map_err(|e| CoiError::Io(e.to_string()))?;
        sink.write(Payload::bytes(manifest))
            .and_then(|_| sink.close())
            .map_err(|e| CoiError::Io(e.to_string()))?;
        let mem = self.inner.proc.memory();
        let mut clean_bytes = 0u64;
        let mut dirty_bytes = 0u64;
        for (id, _, _) in &bufs {
            let region = buf_region(*id);
            let content = self.buffer_payload(*id);
            let digest = content.digest();
            let len = content.len();
            let dirty = mem.region_is_dirty(&region).unwrap_or(true);
            let mut sink = self
                .inner
                .storage
                .sink(
                    self.inner.node.id(),
                    &format!("{path}/local_store/buf_{id}"),
                )
                .map_err(|e| CoiError::Io(e.to_string()))?;
            // O(dirty): an untouched buffer whose prior snapshot the
            // store can still replay is never read or streamed again —
            // the sink rebuilds it from the previous capture's chunks.
            let cached = !dirty
                && sink
                    .write_cached_record(&region, digest, len)
                    .map_err(|e| CoiError::Io(e.to_string()))?;
            if cached {
                clean_bytes += len;
            } else {
                sink.begin_record(&region, digest, len);
                for chunk in content.chunks(IO_CHUNK) {
                    sink.write(chunk).map_err(|e| CoiError::Io(e.to_string()))?;
                }
                dirty_bytes += len;
            }
            sink.close().map_err(|e| CoiError::Io(e.to_string()))?;
            let _ = mem.mark_region_captured(&region);
        }
        obs::counter_add("snapify.capture.clean_bytes", clean_bytes);
        obs::counter_add("snapify.capture.dirty_bytes", dirty_bytes);
        Ok(())
    }

    /// Raise the capture barrier and wait until the executor is parked at
    /// a step boundary (or is blocked with its state fully recorded as
    /// `ResultPending`).
    fn park_executor(&self) {
        let mut st = self.inner.pstate.lock();
        st.barrier = true;
        self.inner.pcv.notify_all();
        while !st.parked
            && matches!(
                st.active.as_ref().map(|a| &a.phase),
                Some(RunPhase::Executing(_))
            )
        {
            st = self.inner.pcv.wait(st);
        }
    }

    /// Capture the device snapshot at a safe point. The executor is
    /// already parked (the pause raised the barrier); the barrier stays up
    /// until resume.
    fn do_capture(&self, path: &str, terminate: bool) -> Result<u64, CoiError> {
        let _ = terminate;
        let _span = obs::span!("coi.capture", path = path);
        self.park_executor();
        let runtime_state = self.serialize_state();
        // The snapshot transfer proper: streaming the BLCR process image
        // out of the device into the snapshot store.
        let transfer = obs::span!("snapify.transfer", path = path);
        let mut sink = self
            .inner
            .storage
            .sink(self.inner.node.id(), &format!("{path}/device_snapshot"))
            .map_err(|e| CoiError::Io(e.to_string()))?;
        let stats = blcr_sim::checkpoint_incremental(
            &self.inner.blcr,
            &self.inner.proc,
            &runtime_state,
            sink.as_mut(),
            &|name| !name.starts_with(BUF_REGION_PREFIX),
        )
        .map_err(|e| CoiError::Io(e.to_string()))?;
        drop(transfer);
        obs::histogram_observe("coi.device_snapshot_bytes", stats.snapshot_bytes);
        Ok(stats.snapshot_bytes)
    }

    fn release_pause_locks(&self) {
        self.inner.log_lock.release_if_held();
        self.inner.event_lock.release_if_held();
        self.inner.result_lock.release_if_held();
    }

    /// Serialize the pipeline + buffer table into the opaque runtime-state
    /// blob stored in the device snapshot.
    fn serialize_state(&self) -> Vec<u8> {
        let st = self.inner.pstate.lock();
        let bufs = self.inner.buffers.lock();
        let mut e = Enc::new()
            .string(self.inner.binary.name())
            .u64(self.inner.host_pid)
            .u64(st.enqueued);
        // Active run.
        match &st.active {
            None => e = e.tag(0),
            Some(a) => {
                e = e
                    .tag(1)
                    .u64(a.req.id)
                    .string(&a.req.function)
                    .bytes(&a.req.args)
                    .list(&a.req.buffers, |e, b| e.u64(*b));
                e = match &a.phase {
                    RunPhase::Executing(cursor) => e.tag(0).u64(*cursor),
                    RunPhase::ResultPending(Ok(r)) => e.tag(1).bytes(r),
                    RunPhase::ResultPending(Err(m)) => e.tag(2).string(m),
                };
            }
        }
        // Pending queue.
        let queue: Vec<RunRequest> = st.queue.iter().cloned().collect();
        e = e.list(&queue, |e, r| {
            e.u64(r.id)
                .string(&r.function)
                .bytes(&r.args)
                .list(&r.buffers, |e, b| e.u64(*b))
        });
        // Buffer table.
        let table: Vec<(u64, u64, u64)> =
            bufs.iter().map(|(id, m)| (*id, m.size, m.addr.0)).collect();
        e = e.list(&table, |e, (id, size, addr)| {
            e.u64(*id).u64(*size).u64(*addr)
        });
        e.into_bytes()
    }

    /// Restore an offload process from `path` onto `node`. Returns the
    /// runtime, its new ports, and the (buffer, old, new) RDMA address
    /// translation table (§4.3).
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        config: &CoiConfig,
        blcr: &BlcrConfig,
        scif: &Scif,
        node: &SimNode,
        pids: &PidAllocator,
        registry: &FunctionRegistry,
        storage: Arc<dyn SnapshotStorage>,
        path: &str,
        signal_latency: simkernel::SimDuration,
        library_copy: impl FnOnce(u64),
    ) -> Result<(OffloadRuntime, [u16; 4], AddrTable, RestoreBreakdown), CoiError> {
        let mut breakdown = RestoreBreakdown::default();
        // 1. Manifest: which buffers (and their old addresses) exist.
        let manifest = read_all(
            &*storage,
            node.id(),
            &format!("{path}/local_store/manifest"),
        )?;
        let manifest_bytes = manifest.to_bytes();
        let mut d = Dec::new(&manifest_bytes);
        let binary_name = d.string().map_err(|e| CoiError::Protocol(e.to_string()))?;
        let _host_pid = d.u64().map_err(|e| CoiError::Protocol(e.to_string()))?;
        let buf_list: Vec<(u64, u64, u64)> = d
            .list(|d| Ok((d.u64()?, d.u64()?, d.u64()?)))
            .map_err(|e| CoiError::Protocol(e.to_string()))?;

        let binary = registry
            .get(&binary_name)
            .ok_or_else(|| CoiError::Protocol(format!("unknown binary '{binary_name}'")))?;

        // 2. Copy the runtime libraries to the coprocessor "on the fly".
        let t0 = simkernel::now();
        {
            let _s = obs::span!("coi.restore.library_copy", bytes = binary.image_bytes);
            library_copy(binary.image_bytes);
        }
        breakdown.library_copy_ns = (simkernel::now() - t0).as_nanos();

        // 3. Copy the local store to the coprocessor.
        let store_span = obs::span!("coi.restore.store_copy");
        let t0 = simkernel::now();
        let mut stores: Vec<(u64, u64, u64, Payload)> = Vec::new();
        for (id, size, old_addr) in &buf_list {
            let content = read_all(
                &*storage,
                node.id(),
                &format!("{path}/local_store/buf_{id}"),
            )?;
            assert_eq!(
                content.len(),
                *size,
                "local store size mismatch for buf {id}"
            );
            stores.push((*id, *size, *old_addr, content));
        }
        breakdown.store_copy_ns = (simkernel::now() - t0).as_nanos();
        drop(store_span);

        // 4. BLCR restart of the process image.
        let blcr_span = obs::span!("coi.restore.blcr_restart");
        let t0 = simkernel::now();
        let mut src = storage
            .source(node.id(), &format!("{path}/device_snapshot"))
            .map_err(|e| CoiError::Io(e.to_string()))?;
        let restarted = blcr_sim::restart(blcr, node, pids, src.as_mut())
            .map_err(|e| CoiError::Io(e.to_string()))?;
        breakdown.blcr_restart_ns = (simkernel::now() - t0).as_nanos();
        drop(blcr_span);
        let proc = restarted.proc;

        // 5. Parse the runtime state.
        let state = restarted.runtime_state;
        let mut d = Dec::new(&state);
        let perr = |e: crate::wire::DecodeError| CoiError::Protocol(e.to_string());
        let state_binary = d.string().map_err(perr)?;
        debug_assert_eq!(state_binary, binary_name);
        let host_pid = d.u64().map_err(perr)?;
        let enqueued = d.u64().map_err(perr)?;
        let active = match d.tag().map_err(perr)? {
            0 => None,
            _ => {
                let id = d.u64().map_err(perr)?;
                let function = d.string().map_err(perr)?;
                let args = d.bytes().map_err(perr)?;
                let buffers = d.list(|d| d.u64()).map_err(perr)?;
                let phase = match d.tag().map_err(perr)? {
                    0 => RunPhase::Executing(d.u64().map_err(perr)?),
                    1 => RunPhase::ResultPending(Ok(d.bytes().map_err(perr)?)),
                    _ => RunPhase::ResultPending(Err(d.string().map_err(perr)?)),
                };
                Some(ActiveRun {
                    req: RunRequest {
                        id,
                        function,
                        args,
                        buffers,
                    },
                    phase,
                })
            }
        };
        let queue: VecDeque<RunRequest> = d
            .list(|d| {
                Ok(RunRequest {
                    id: d.u64()?,
                    function: d.string()?,
                    args: d.bytes()?,
                    buffers: d.list(|d| d.u64())?,
                })
            })
            .map_err(perr)?
            .into();
        let _buffer_table: Vec<(u64, u64, u64)> = d
            .list(|d| Ok((d.u64()?, d.u64()?, d.u64()?)))
            .map_err(perr)?;

        // 6. Re-map the local store and re-register the windows; the
        //    re-registration returns *new* addresses, so build the
        //    (old, new) lookup table.
        let rereg_span = obs::span!("coi.restore.reregistration");
        let t0 = simkernel::now();
        let mut buffers = BTreeMap::new();
        let mut addr_table = Vec::new();
        for (id, size, old_addr, content) in stores {
            proc.memory()
                .map_region(&buf_region(id), content)
                .map_err(|e| CoiError::OutOfMemory(e.to_string()))?;
            let new_addr = scif.register(&proc, &buf_region(id));
            buffers.insert(
                id,
                BufMeta {
                    size,
                    addr: new_addr,
                },
            );
            addr_table.push((id, size, old_addr, new_addr.0));
        }
        // Every region now holds exactly what the snapshot holds (the
        // BLCR image and the re-mapped local store both came from it),
        // so a warm capture right after restore starts from all-clean.
        proc.memory().mark_captured();
        breakdown.reregistration_ns = (simkernel::now() - t0).as_nanos();
        drop(rereg_span);

        // 7. Build the runtime, initially paused (barrier up) until
        //    snapify_resume (§4.3: "not fully active after restore").
        //    `enqueued` counts receives on the *current* run channel, which
        //    is brand new after a restore — start it from zero.
        let _ = enqueued;
        let rt = Self::build(
            config,
            blcr,
            scif,
            node,
            proc,
            binary,
            host_pid,
            storage,
            signal_latency,
            PipelineState {
                queue,
                active,
                enqueued: 0,
                barrier: true,
                parked: false,
            },
            buffers,
        );
        let ports = rt.open_ports();
        Ok((rt, ports, addr_table, breakdown))
    }

    pub(crate) fn pipe_slot(&self) -> &SimMutex<Option<SnapifyPipe>> {
        &self.inner.pipe
    }

    pub(crate) fn clear_barrier_and_resume(&self) {
        {
            let mut st = self.inner.pstate.lock();
            st.barrier = false;
        }
        self.inner.pcv.notify_all();
        *self.inner.pipe.lock() = None;
    }

    /// Terminate the offload process: close every channel, wake every
    /// thread, release memory and RDMA windows.
    pub fn terminate(&self) {
        {
            let mut t = self.inner.terminated.lock();
            if *t {
                return;
            }
            *t = true;
        }
        self.inner.pcv.notify_all();
        if let Some(eps) = self.inner.eps.lock().as_ref() {
            eps.run.close();
            eps.cmd.close();
            eps.log.close();
            eps.event.close();
        }
        self.inner.log_q.close();
        self.inner.event_q.close();
        if let Some(pipe) = self.inner.pipe.lock().as_ref() {
            pipe.to_offload.close();
            pipe.to_daemon.close();
        }
        self.inner.scif.unregister_process(&self.inner.proc);
        self.inner.proc.exit();
    }
}

fn read_all(storage: &dyn SnapshotStorage, node: NodeId, path: &str) -> Result<Payload, CoiError> {
    let mut src = storage
        .source(node, path)
        .map_err(|e| CoiError::Io(e.to_string()))?;
    let mut out = Payload::empty();
    loop {
        match src.read(IO_CHUNK) {
            Ok(Some(chunk)) => out.append(chunk),
            Ok(None) => return Ok(out),
            Err(e) => return Err(CoiError::Io(e.to_string())),
        }
    }
}
