//! # coi-sim — the Coprocessor Offload Infrastructure, simulated
//!
//! COI is MPSS's offload runtime (§2): the host-side library an offload
//! application links against, the per-device `coi_daemon`, and the device-
//! side process that executes offload functions. This crate reproduces
//! all three, *including the Snapify modifications* the paper makes to
//! them (drain locks at every SCIF use site, blocking pipeline sends, the
//! daemon's snapshot services and monitor thread, the capture-safe
//! pipeline state machine).
//!
//! The `snapify` crate builds the paper's public API
//! (`snapify_pause` / `capture` / `resume` / `restore` / `wait`) on the
//! plumbing exposed here, mirroring how the real Snapify ships as COI
//! modifications plus a thin API library.
//!
//! Layering:
//!
//! * [`CoiWorld`] — boots one daemon per device over a shared SCIF driver;
//! * [`CoiProcessHandle`] — the host-side `COIProcess*`: buffers, run
//!   pipeline, drain locks;
//! * [`OffloadRuntime`] — the device-side process: executor, command
//!   server, stream clients, and the offload half of pause/capture;
//! * [`CoiDaemon`] — process lifecycle + the Snapify coordinator;
//! * [`SnapshotStorage`] — the seam where Snapify-IO (or an NFS baseline)
//!   plugs in.

#![warn(missing_docs)]

pub mod binary;
pub mod config;
pub mod daemon;
pub mod handle;
pub mod locks;
pub mod msgs;
pub mod offload;
pub mod storage;
pub mod wire;
pub mod world;

use std::fmt;

pub use binary::{DeviceBinary, FunctionRegistry, OffloadCtx, OffloadFn, StepOutcome};
pub use config::CoiConfig;
pub use daemon::CoiDaemon;
pub use handle::{CoiBuffer, CoiProcessHandle, RunHandle};
pub use locks::DrainLock;
pub use offload::{OffloadRuntime, SnapifyPipe, BUF_REGION_PREFIX, IO_CHUNK};
pub use storage::{DirectStorage, SnapshotStorage};
pub use world::CoiWorld;

/// Errors surfaced by the COI API.
#[derive(Clone, Debug, PartialEq)]
pub enum CoiError {
    /// The peer process or channel is gone.
    Closed,
    /// SCIF-level failure.
    Scif(scif_sim::ScifError),
    /// The requested device binary is not registered.
    BadBinary(String),
    /// The offload function failed (or does not exist).
    Function(String),
    /// Device memory exhausted.
    OutOfMemory(String),
    /// Snapshot or local-store I/O failed.
    Io(String),
    /// Malformed control message or protocol violation.
    Protocol(String),
}

impl fmt::Display for CoiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoiError::Closed => write!(f, "offload process or channel closed"),
            CoiError::Scif(e) => write!(f, "scif: {e}"),
            CoiError::BadBinary(b) => write!(f, "no such device binary: {b}"),
            CoiError::Function(m) => write!(f, "offload function error: {m}"),
            CoiError::OutOfMemory(m) => write!(f, "device out of memory: {m}"),
            CoiError::Io(m) => write!(f, "snapshot i/o: {m}"),
            CoiError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for CoiError {}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_platform::{Payload, PhiServer, MB};
    use simkernel::{Kernel, SimChannel};
    use std::sync::Arc;

    /// A device binary with kernels exercising buffers, private state,
    /// multi-step execution, and logging.
    fn test_registry() -> FunctionRegistry {
        let reg = FunctionRegistry::new();
        let bin = DeviceBinary::new("test.so", 2 * MB, 16 * MB)
            // sum all bytes of buffer 0 (must be real bytes)
            .simple_function("sum", |ctx| {
                let data = ctx.read_buffer(0).to_bytes();
                ctx.compute(5e8, 60);
                let s: u64 = data.iter().map(|&b| b as u64).sum();
                s.to_le_bytes().to_vec()
            })
            // increment every byte of buffer 0 in place
            .simple_function("inc", |ctx| {
                let mut data = ctx.read_buffer(0).to_bytes();
                for b in data.iter_mut() {
                    *b = b.wrapping_add(1);
                }
                ctx.compute(1e6, 60);
                ctx.write_buffer(0, Payload::bytes(data));
                Vec::new()
            })
            // multi-step accumulator using private offload state
            .function("steps", Arc::new(StepFn))
            // emits a log record
            .simple_function("chatty", |ctx| {
                ctx.log(b"hello from the phi".to_vec());
                Vec::new()
            });
        reg.register(bin);
        reg
    }

    struct StepFn;
    impl OffloadFn for StepFn {
        fn step(&self, ctx: &mut OffloadCtx<'_>, cursor: u64) -> StepOutcome {
            let total_steps = u64::from_le_bytes(ctx.args[..8].try_into().unwrap());
            ctx.compute(5e7, 60);
            let acc = ctx
                .private("acc")
                .map(|p| u64::from_le_bytes(p.to_bytes().try_into().unwrap()))
                .unwrap_or(0);
            let acc = acc + cursor + 1;
            ctx.set_private("acc", Payload::bytes(acc.to_le_bytes().to_vec()));
            if cursor + 1 >= total_steps {
                StepOutcome::Done(acc.to_le_bytes().to_vec())
            } else {
                StepOutcome::Yield
            }
        }
    }

    fn world() -> (CoiWorld, PhiServer) {
        let server = PhiServer::default_server();
        let w = CoiWorld::boot_default(&server, test_registry());
        (w, server)
    }

    #[test]
    fn create_and_destroy_process() {
        Kernel::run_root(|| {
            let (w, _) = world();
            let host = w.create_host_process("app");
            let h = w.create_process(&host, 0, "test.so").unwrap();
            assert!(h.pid() > 0);
            assert_eq!(w.daemon(0).live_processes(), 1);
            h.ping().unwrap();
            h.destroy().unwrap();
            assert_eq!(w.daemon(0).live_processes(), 0);
            assert!(w.daemon(0).crashed_pids().is_empty());
        });
    }

    #[test]
    fn unknown_binary_rejected() {
        Kernel::run_root(|| {
            let (w, _) = world();
            let host = w.create_host_process("app");
            let err = w.create_process(&host, 0, "nope.so").unwrap_err();
            assert!(matches!(err, CoiError::BadBinary(_)));
        });
    }

    #[test]
    fn buffer_roundtrip_through_rdma() {
        Kernel::run_root(|| {
            let (w, _) = world();
            let host = w.create_host_process("app");
            let h = w.create_process(&host, 0, "test.so").unwrap();
            let buf = h.create_buffer(8).unwrap();
            h.buffer_write(&buf, Payload::bytes(vec![1, 2, 3, 4, 5, 6, 7, 8]))
                .unwrap();
            let back = h.buffer_read(&buf).unwrap();
            assert_eq!(back.to_bytes(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
            h.destroy_buffer(&buf).unwrap();
            h.destroy().unwrap();
        });
    }

    #[test]
    fn offload_function_computes_on_buffer() {
        Kernel::run_root(|| {
            let (w, _) = world();
            let host = w.create_host_process("app");
            let h = w.create_process(&host, 0, "test.so").unwrap();
            let buf = h.create_buffer(4).unwrap();
            h.buffer_write(&buf, Payload::bytes(vec![10, 20, 30, 40]))
                .unwrap();
            let ret = h.run_sync("sum", Vec::new(), &[&buf]).unwrap();
            assert_eq!(u64::from_le_bytes(ret.try_into().unwrap()), 100);
            // In-place mutation visible to a later read.
            h.run_sync("inc", Vec::new(), &[&buf]).unwrap();
            assert_eq!(
                h.buffer_read(&buf).unwrap().to_bytes(),
                vec![11, 21, 31, 41]
            );
            h.destroy().unwrap();
        });
    }

    #[test]
    fn missing_function_reports_error() {
        Kernel::run_root(|| {
            let (w, _) = world();
            let host = w.create_host_process("app");
            let h = w.create_process(&host, 0, "test.so").unwrap();
            let err = h.run_sync("nope", Vec::new(), &[]).unwrap_err();
            assert!(matches!(err, CoiError::Function(_)));
            h.destroy().unwrap();
        });
    }

    #[test]
    fn multi_step_function_with_private_state() {
        Kernel::run_root(|| {
            let (w, _) = world();
            let host = w.create_host_process("app");
            let h = w.create_process(&host, 0, "test.so").unwrap();
            let ret = h
                .run_sync("steps", 5u64.to_le_bytes().to_vec(), &[])
                .unwrap();
            // acc = 1+2+3+4+5 = 15
            assert_eq!(u64::from_le_bytes(ret.try_into().unwrap()), 15);
            h.destroy().unwrap();
        });
    }

    #[test]
    fn async_runs_queue_and_complete_in_order() {
        Kernel::run_root(|| {
            let (w, _) = world();
            let host = w.create_host_process("app");
            let h = w.create_process(&host, 0, "test.so").unwrap();
            let buf = h.create_buffer(4).unwrap();
            h.buffer_write(&buf, Payload::bytes(vec![0u8; 4])).unwrap();
            let r1 = h.run("inc", Vec::new(), &[&buf]).unwrap();
            let r2 = h.run("inc", Vec::new(), &[&buf]).unwrap();
            let r3 = h.run("sum", Vec::new(), &[&buf]).unwrap();
            r1.wait().unwrap();
            r2.wait().unwrap();
            let ret = r3.wait().unwrap();
            assert_eq!(u64::from_le_bytes(ret.try_into().unwrap()), 8);
            h.destroy().unwrap();
        });
    }

    #[test]
    fn logs_flow_to_host() {
        Kernel::run_root(|| {
            let (w, _) = world();
            let host = w.create_host_process("app");
            let h = w.create_process(&host, 0, "test.so").unwrap();
            h.run_sync("chatty", Vec::new(), &[]).unwrap();
            // Give the log client a moment to ship the record.
            simkernel::sleep(simkernel::time::ms(5));
            let logs = h.logs();
            assert!(logs.iter().any(|l| l == b"hello from the phi"));
            h.destroy().unwrap();
        });
    }

    #[test]
    fn buffer_oom_is_reported() {
        Kernel::run_root(|| {
            let (w, server) = world();
            let host = w.create_host_process("app");
            let h = w.create_process(&host, 0, "test.so").unwrap();
            let too_big = server.device(0).mem().capacity();
            let err = h.create_buffer(too_big).unwrap_err();
            assert!(matches!(err, CoiError::OutOfMemory(_)));
            h.destroy().unwrap();
        });
    }

    #[test]
    fn two_processes_on_two_devices() {
        Kernel::run_root(|| {
            let (w, _) = world();
            let host = w.create_host_process("app");
            let h0 = w.create_process(&host, 0, "test.so").unwrap();
            let h1 = w.create_process(&host, 1, "test.so").unwrap();
            assert_ne!(h0.pid(), h1.pid());
            let b0 = h0.create_buffer(4).unwrap();
            let b1 = h1.create_buffer(4).unwrap();
            h0.buffer_write(&b0, Payload::bytes(vec![1; 4])).unwrap();
            h1.buffer_write(&b1, Payload::bytes(vec![2; 4])).unwrap();
            let s0 = h0.run_sync("sum", Vec::new(), &[&b0]).unwrap();
            let s1 = h1.run_sync("sum", Vec::new(), &[&b1]).unwrap();
            assert_eq!(u64::from_le_bytes(s0.try_into().unwrap()), 4);
            assert_eq!(u64::from_le_bytes(s1.try_into().unwrap()), 8);
            h0.destroy().unwrap();
            h1.destroy().unwrap();
        });
    }

    #[test]
    fn crash_is_detected_by_watchdog() {
        Kernel::run_root(|| {
            let (w, _) = world();
            let host = w.create_host_process("app");
            let h = w.create_process(&host, 0, "test.so").unwrap();
            let rt = w.daemon(0).runtime(h.pid()).unwrap();
            // Simulate a device-side crash (not via DestroyProcess).
            rt.terminate();
            simkernel::sleep(simkernel::time::ms(1));
            assert_eq!(w.daemon(0).crashed_pids(), vec![h.pid()]);
        });
    }

    #[test]
    fn hook_toggle_changes_runtime() {
        // The Fig 9 mechanism: the same app is slower (in virtual time)
        // with Snapify hooks than without.
        let run_with = |config: CoiConfig| -> u64 {
            Kernel::run_root(move || {
                let server = PhiServer::default_server();
                let storage = Arc::new(DirectStorage::new(&server));
                let w = CoiWorld::boot(&server, config, test_registry(), storage);
                let host = w.create_host_process("app");
                let h = w.create_process(&host, 0, "test.so").unwrap();
                let buf = h.create_buffer(4).unwrap();
                let t0 = simkernel::now();
                for _ in 0..50 {
                    h.buffer_write(&buf, Payload::bytes(vec![1; 4])).unwrap();
                    h.run_sync("sum", Vec::new(), &[&buf]).unwrap();
                }
                let elapsed = simkernel::now() - t0;
                h.destroy().unwrap();
                elapsed.as_nanos()
            })
        };
        let stock = run_with(CoiConfig::stock());
        let snapify = run_with(CoiConfig::default());
        assert!(snapify > stock, "snapify={snapify} stock={stock}");
        // ... but only slightly (well under 5% for this loop shape).
        assert!((snapify - stock) as f64 / (stock as f64) < 0.05);
    }

    #[test]
    fn drained_predicate_sees_traffic() {
        Kernel::run_root(|| {
            let (w, _) = world();
            let host = w.create_host_process("app");
            let h = w.create_process(&host, 0, "test.so").unwrap();
            let rt = w.daemon(0).runtime(h.pid()).unwrap();
            // Idle process: everything drained.
            simkernel::sleep(simkernel::time::ms(1));
            assert!(rt.channels_drained());
            let _ = h.run("steps", 3u64.to_le_bytes().to_vec(), &[]).unwrap();
            // A request is in flight or recorded-but-executing; either way
            // once it completes and the result is consumed, we drain again.
            simkernel::sleep(simkernel::time::secs(1));
            assert!(rt.channels_drained());
            h.destroy().unwrap();
        });
    }

    #[test]
    fn wire_channel_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SimChannel<crate::msgs::PipeMsg>>();
        assert_send::<CoiProcessHandle>();
        assert_send::<OffloadRuntime>();
    }
}
