//! World assembly: SCIF + daemons + registry for one Xeon Phi server.

use std::sync::Arc;

use blcr_sim::BlcrConfig;
use phi_platform::PhiServer;
use scif_sim::Scif;
use simproc::{PidAllocator, SimProcess};

use crate::binary::FunctionRegistry;
use crate::config::CoiConfig;
use crate::daemon::CoiDaemon;
use crate::handle::CoiProcessHandle;
use crate::storage::{DirectStorage, SnapshotStorage};
use crate::CoiError;

struct Inner {
    server: PhiServer,
    scif: Scif,
    config: CoiConfig,
    blcr: BlcrConfig,
    registry: FunctionRegistry,
    pids: PidAllocator,
    storage: Arc<dyn SnapshotStorage>,
    daemons: Vec<CoiDaemon>,
}

/// The COI world for one server: a daemon per coprocessor plus shared
/// driver state. Cheap to clone.
#[derive(Clone)]
pub struct CoiWorld {
    inner: Arc<Inner>,
}

impl CoiWorld {
    /// Boot COI on `server` with the given configuration, binary registry,
    /// and snapshot storage. Spawns one daemon per coprocessor.
    pub fn boot(
        server: &PhiServer,
        config: CoiConfig,
        registry: FunctionRegistry,
        storage: Arc<dyn SnapshotStorage>,
    ) -> CoiWorld {
        let scif = Scif::new(server);
        Self::boot_with_scif(server, scif, config, registry, storage)
    }

    /// Like [`CoiWorld::boot`], but on an existing SCIF driver (so other
    /// services, e.g. Snapify-IO daemons, can share the port space).
    pub fn boot_with_scif(
        server: &PhiServer,
        scif: Scif,
        config: CoiConfig,
        registry: FunctionRegistry,
        storage: Arc<dyn SnapshotStorage>,
    ) -> CoiWorld {
        let pids = PidAllocator::new();
        let blcr = BlcrConfig::default();
        let daemons = (0..server.num_devices())
            .map(|i| {
                CoiDaemon::start(
                    i,
                    server.device(i),
                    &scif,
                    &config,
                    &blcr,
                    server.params(),
                    &registry,
                    Arc::clone(&storage),
                    &pids,
                )
            })
            .collect();
        CoiWorld {
            inner: Arc::new(Inner {
                server: server.clone(),
                scif,
                config,
                blcr,
                registry,
                pids,
                storage,
                daemons,
            }),
        }
    }

    /// Boot with default config and pass-through storage (tests).
    pub fn boot_default(server: &PhiServer, registry: FunctionRegistry) -> CoiWorld {
        CoiWorld::boot(
            server,
            CoiConfig::default(),
            registry,
            Arc::new(DirectStorage::new(server)),
        )
    }

    /// Create a host process to run an offload application in.
    pub fn create_host_process(&self, name: &str) -> SimProcess {
        SimProcess::new(self.inner.pids.alloc(), name, self.inner.server.host())
    }

    /// Create an offload process for `host_proc` on device `device`.
    pub fn create_process(
        &self,
        host_proc: &SimProcess,
        device: usize,
        binary: &str,
    ) -> Result<CoiProcessHandle, CoiError> {
        let image_bytes = self
            .inner
            .registry
            .get(binary)
            .map(|b| b.image_bytes)
            .unwrap_or(0);
        CoiProcessHandle::create(
            &self.inner.config,
            &self.inner.scif,
            host_proc,
            device,
            binary,
            image_bytes,
        )
    }

    /// The underlying server.
    pub fn server(&self) -> &PhiServer {
        &self.inner.server
    }

    /// The SCIF driver.
    pub fn scif(&self) -> &Scif {
        &self.inner.scif
    }

    /// The COI configuration.
    pub fn config(&self) -> &CoiConfig {
        &self.inner.config
    }

    /// The BLCR configuration used for device snapshots.
    pub fn blcr(&self) -> &BlcrConfig {
        &self.inner.blcr
    }

    /// The binary registry.
    pub fn registry(&self) -> &FunctionRegistry {
        &self.inner.registry
    }

    /// The pid allocator (shared by daemons and host processes).
    pub fn pids(&self) -> &PidAllocator {
        &self.inner.pids
    }

    /// The snapshot storage implementation.
    pub fn storage(&self) -> &Arc<dyn SnapshotStorage> {
        &self.inner.storage
    }

    /// The daemon of device `i`.
    pub fn daemon(&self, i: usize) -> &CoiDaemon {
        &self.inner.daemons[i]
    }
}
