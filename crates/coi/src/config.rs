//! COI runtime configuration.

use simkernel::time::{secs, us};
use simkernel::SimDuration;

/// Configuration of the COI runtime, including the Snapify extension
/// switches.
#[derive(Clone, Debug)]
pub struct CoiConfig {
    /// Enable the Snapify modifications to COI: drain locks around every
    /// SCIF use site, blocking pipeline sends, daemon snapshot services.
    /// With this off, COI behaves like stock MPSS — offload apps run, but
    /// pause/capture are unavailable. Fig 9 measures exactly this toggle.
    pub snapify_hooks: bool,
    /// Virtual-time cost of one Snapify hook crossing (lock acquire +
    /// release + the synchronization a formerly-asynchronous send now
    /// performs). Charged only when `snapify_hooks` is on.
    pub hook_cost: SimDuration,
    /// Wire size of a run-function request (sans args), for message costs.
    pub run_request_overhead: u64,
    /// Poll interval used by drain waits and the daemon monitor thread.
    pub poll_interval: SimDuration,
    /// Watchdog deadline for one stage of an in-flight Snapify request.
    /// Generous on purpose: transient chaos-plane faults absorbed by
    /// the transport retry policies merely slow a stage down and must
    /// not trip the watchdog. `SimDuration::ZERO` disables it.
    pub watchdog_timeout: SimDuration,
    /// Deadline extensions (each doubling the window) the watchdog
    /// grants before it surfaces the stuck request as a typed failure
    /// reply instead of hanging the requester forever.
    pub watchdog_retries: u32,
}

impl Default for CoiConfig {
    fn default() -> CoiConfig {
        CoiConfig {
            snapify_hooks: true,
            hook_cost: us(7),
            run_request_overhead: 128,
            poll_interval: us(200),
            watchdog_timeout: secs(300),
            watchdog_retries: 2,
        }
    }
}

impl CoiConfig {
    /// Stock MPSS: no Snapify support (the Fig 9 baseline).
    pub fn stock() -> CoiConfig {
        CoiConfig {
            snapify_hooks: false,
            ..CoiConfig::default()
        }
    }

    /// Charge one hook crossing if the hooks are enabled.
    pub fn charge_hook(&self) {
        if self.snapify_hooks && self.hook_cost > SimDuration::ZERO {
            simkernel::sleep(self.hook_cost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::{now, Kernel};

    #[test]
    fn stock_disables_hooks() {
        assert!(!CoiConfig::stock().snapify_hooks);
        assert!(CoiConfig::default().snapify_hooks);
    }

    #[test]
    fn hook_charge_only_when_enabled() {
        Kernel::run_root(|| {
            let stock = CoiConfig::stock();
            let t0 = now();
            stock.charge_hook();
            assert_eq!(now(), t0);
            let snap = CoiConfig::default();
            snap.charge_hook();
            assert_eq!(now() - t0, snap.hook_cost);
        });
    }
}
