//! The host side of COI: `COIProcess*` and the COI library calls an
//! offload application makes.
//!
//! A [`CoiProcessHandle`] owns the host's four SCIF connections to its
//! offload process, the host-side server threads (log/event), the result
//! dispatcher, and — when Snapify is enabled — the host half of the drain
//! locks (§4.1 cases 1–4).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use phi_platform::{NodeId, Payload};
use scif_sim::{ports, RdmaAddr, Scif, ScifEndpoint};
use simkernel::{SimChannel, SimMutex};
use simproc::SimProcess;

use crate::config::CoiConfig;

/// Map of in-flight run ids to their result channels.
type PendingRuns = SimMutex<HashMap<u64, SimChannel<Result<Vec<u8>, String>>>>;
use crate::locks::DrainLock;
use crate::msgs::{CmdMsg, CtlMsg, RunMsg, StreamMsg};
use crate::CoiError;

/// A COI buffer as seen by the host: id, size, current RDMA address.
#[derive(Debug)]
pub struct CoiBuffer {
    /// Buffer id (host-assigned).
    pub id: u64,
    /// Size in bytes.
    pub size: u64,
    addr: SimMutex<RdmaAddr>,
}

impl CoiBuffer {
    /// The buffer's current RDMA window address. Changes after a restore
    /// (§4.3's (old, new) lookup table is applied by the Snapify runtime).
    pub fn addr(&self) -> RdmaAddr {
        *self.addr.lock()
    }
}

/// An in-flight offload-function invocation.
pub struct RunHandle {
    /// Run id.
    pub id: u64,
    rx: SimChannel<Result<Vec<u8>, String>>,
}

impl RunHandle {
    /// Block until the function's return value arrives (Fig 4 step 8).
    pub fn wait(self) -> Result<Vec<u8>, CoiError> {
        match self.rx.recv() {
            Ok(Ok(ret)) => Ok(ret),
            Ok(Err(msg)) => Err(CoiError::Function(msg)),
            Err(_) => Err(CoiError::Closed),
        }
    }
}

struct Endpoints {
    run: ScifEndpoint,
    cmd: ScifEndpoint,
    log: ScifEndpoint,
    event: ScifEndpoint,
    ctl: ScifEndpoint,
}

pub(crate) struct HandleInner {
    pub(crate) config: CoiConfig,
    pub(crate) scif: Scif,
    pub(crate) host_proc: SimProcess,
    pub(crate) binary: String,
    pub(crate) binary_image_bytes: u64,

    pub(crate) device: SimMutex<usize>,
    pub(crate) pid: SimMutex<u64>,
    eps: SimMutex<Option<Endpoints>>,

    pending: Arc<PendingRuns>,
    next_run_id: SimMutex<u64>,
    next_buf_id: SimMutex<u64>,
    pub(crate) buffers: SimMutex<BTreeMap<u64, Arc<CoiBuffer>>>,

    // Host-side drain locks (§4.1): process lifecycle (case 1), RDMA
    // buffer transfers (case 2), the cmd client channel (case 3), and the
    // run-function request send (case 4).
    pub(crate) lifecycle: DrainLock,
    pub(crate) rdma: DrainLock,
    pub(crate) cmd_lock: DrainLock,
    pub(crate) run_send: DrainLock,

    // Ctl routing: most exchanges are synchronous request/reply, but the
    // capture completion arrives asynchronously (snapify_capture is
    // non-blocking).
    ctl_replies: SimChannel<CtlMsg>,
    capture_done: SimChannel<CtlMsg>,

    /// Collected log records (host-side COI log server).
    pub(crate) logs: SimMutex<Vec<Vec<u8>>>,
    /// Collected event records.
    pub(crate) events: SimMutex<Vec<Vec<u8>>>,
}

/// Host-side handle to an offload process (`COIProcess*`). Cheap to clone.
#[derive(Clone)]
pub struct CoiProcessHandle {
    pub(crate) inner: Arc<HandleInner>,
}

impl std::fmt::Debug for CoiProcessHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoiProcessHandle")
            .field("pid", &*self.inner.pid.lock())
            .field("device", &*self.inner.device.lock())
            .finish()
    }
}

impl CoiProcessHandle {
    /// Create an offload process on device `device` running `binary`
    /// (i.e. `COIProcessCreateFromFile`).
    pub fn create(
        config: &CoiConfig,
        scif: &Scif,
        host_proc: &SimProcess,
        device: usize,
        binary: &str,
        binary_image_bytes: u64,
    ) -> Result<CoiProcessHandle, CoiError> {
        let pid_tag = host_proc.pid().0;
        let inner = Arc::new(HandleInner {
            config: config.clone(),
            scif: scif.clone(),
            host_proc: host_proc.clone(),
            binary: binary.to_string(),
            binary_image_bytes,
            device: SimMutex::new(format!("hdl dev {pid_tag}"), device),
            pid: SimMutex::new(format!("hdl pid {pid_tag}"), 0),
            eps: SimMutex::new(format!("hdl eps {pid_tag}"), None),
            pending: Arc::new(SimMutex::new(
                format!("hdl pending {pid_tag}"),
                HashMap::new(),
            )),
            next_run_id: SimMutex::new(format!("hdl runid {pid_tag}"), 1),
            next_buf_id: SimMutex::new(format!("hdl bufid {pid_tag}"), 1),
            buffers: SimMutex::new(format!("hdl buffers {pid_tag}"), BTreeMap::new()),
            lifecycle: DrainLock::new(format!("lifecycle {pid_tag}")),
            rdma: DrainLock::new(format!("rdma {pid_tag}")),
            cmd_lock: DrainLock::new(format!("cmd-client {pid_tag}")),
            run_send: DrainLock::new(format!("run-send {pid_tag}")),
            ctl_replies: SimChannel::unbounded(format!("ctl-replies {pid_tag}")),
            capture_done: SimChannel::unbounded(format!("capture-done {pid_tag}")),
            logs: SimMutex::new(format!("hdl logs {pid_tag}"), Vec::new()),
            events: SimMutex::new(format!("hdl events {pid_tag}"), Vec::new()),
        });
        let handle = CoiProcessHandle { inner };

        // Case 1 critical region: process creation.
        handle.inner.lifecycle.acquire();
        let result = handle.create_locked(device, binary);
        handle.inner.lifecycle.release();
        result?;
        Ok(handle)
    }

    fn create_locked(&self, device: usize, binary: &str) -> Result<(), CoiError> {
        let ctl = self.connect_ctl(device)?;
        ctl.send(
            CtlMsg::CreateProcess {
                host_pid: self.inner.host_proc.pid().0,
                binary: binary.into(),
            }
            .encode(),
        )
        .map_err(CoiError::Scif)?;
        let reply = self.await_reply()?;
        let CtlMsg::CreateProcessReply { pid, ports } = reply else {
            return Err(CoiError::Protocol(format!("unexpected reply {reply:?}")));
        };
        if pid == 0 {
            return Err(CoiError::BadBinary(binary.to_string()));
        }
        *self.inner.pid.lock() = pid;
        self.connect_data_channels(device, ports, ctl)?;
        Ok(())
    }

    /// Connect the ctl channel to `device`'s daemon and start its
    /// dispatcher thread.
    fn connect_ctl(&self, device: usize) -> Result<ScifEndpoint, CoiError> {
        let ctl = self
            .inner
            .scif
            .connect(NodeId::HOST, NodeId::device(device), ports::COI_DAEMON)
            .map_err(CoiError::Scif)?;
        let ctl2 = ctl.clone();
        let replies = self.inner.ctl_replies.clone();
        let capture_done = self.inner.capture_done.clone();
        self.inner.host_proc.spawn_service("ctl-dispatch", move || {
            while let Ok(p) = ctl2.recv() {
                match CtlMsg::decode(&p) {
                    Ok(msg @ CtlMsg::SnapifyCaptureComplete { .. }) => {
                        let _ = capture_done.send(msg);
                    }
                    Ok(msg) => {
                        let _ = replies.send(msg);
                    }
                    Err(_) => {}
                }
            }
        });
        Ok(ctl)
    }

    /// Connect run/cmd/log/event to `ports` on `device`, install the
    /// endpoint set, and start the host-side threads.
    pub(crate) fn connect_data_channels(
        &self,
        device: usize,
        ports: [u16; 4],
        ctl: ScifEndpoint,
    ) -> Result<(), CoiError> {
        let dev_node = NodeId::device(device);
        let mut eps = Vec::new();
        for p in ports {
            eps.push(
                self.inner
                    .scif
                    .connect(NodeId::HOST, dev_node, p)
                    .map_err(CoiError::Scif)?,
            );
        }
        let endpoints = Endpoints {
            run: eps[0].clone(),
            cmd: eps[1].clone(),
            log: eps[2].clone(),
            event: eps[3].clone(),
            ctl,
        };
        // Result dispatcher (the receiving half of Fig 4's Pipe_Thread1).
        {
            let run = endpoints.run.clone();
            let pending = Arc::clone(&self.inner.pending);
            self.inner.host_proc.spawn_service("run-dispatch", move || {
                while let Ok(p) = run.recv() {
                    let (id, outcome) = match RunMsg::decode(&p) {
                        Ok(RunMsg::Result { id, ret }) => (id, Ok(ret)),
                        Ok(RunMsg::Error { id, message }) => (id, Err(message)),
                        _ => continue,
                    };
                    let ch = pending.lock().remove(&id);
                    if let Some(ch) = ch {
                        let _ = ch.send(outcome);
                    }
                }
            });
        }
        // Log / event server threads (§4.1 case 3, host-server side).
        for (is_log, ep) in [
            (true, endpoints.log.clone()),
            (false, endpoints.event.clone()),
        ] {
            let me = self.clone();
            let name = if is_log { "log-server" } else { "event-server" };
            self.inner.host_proc.spawn_service(name, move || {
                while let Ok(p) = ep.recv() {
                    match StreamMsg::decode(&p) {
                        Ok(StreamMsg::Record(rec)) => {
                            if is_log {
                                me.inner.logs.lock().push(rec);
                            } else {
                                me.inner.events.lock().push(rec);
                            }
                        }
                        Ok(StreamMsg::Shutdown) => {
                            let _ = ep.send(StreamMsg::ShutdownAck.encode());
                        }
                        _ => {}
                    }
                }
            });
        }
        *self.inner.eps.lock() = Some(endpoints);
        Ok(())
    }

    fn await_reply(&self) -> Result<CtlMsg, CoiError> {
        self.inner.ctl_replies.recv().map_err(|_| CoiError::Closed)
    }

    fn eps(&self) -> Result<(ScifEndpoint, ScifEndpoint, ScifEndpoint), CoiError> {
        let eps = self.inner.eps.lock();
        match eps.as_ref() {
            Some(e) => Ok((e.run.clone(), e.cmd.clone(), e.ctl.clone())),
            None => Err(CoiError::Closed),
        }
    }

    // ------------------------------------------------------------------
    // Public COI API
    // ------------------------------------------------------------------

    /// The offload process's pid.
    pub fn pid(&self) -> u64 {
        *self.inner.pid.lock()
    }

    /// The device index the offload process currently runs on (changes
    /// after a migration).
    pub fn device(&self) -> usize {
        *self.inner.device.lock()
    }

    /// The host process that owns this handle.
    pub fn host_proc(&self) -> &SimProcess {
        &self.inner.host_proc
    }

    /// The device binary name.
    pub fn binary(&self) -> &str {
        &self.inner.binary
    }

    /// Size of the device binary image on the host fs (for the
    /// library-copy steps of pause and restore).
    pub fn binary_image_bytes(&self) -> u64 {
        self.inner.binary_image_bytes
    }

    /// The host file system (where snapshots live).
    pub fn host_fs(&self) -> phi_platform::SimFs {
        self.inner.scif.server().host().fs().clone()
    }

    /// The platform parameters of the host this process runs on
    /// (hostname, link speeds, …).
    pub fn host_params(&self) -> phi_platform::PlatformParams {
        self.inner.scif.server().params().clone()
    }

    /// Create a COI buffer of `size` bytes (`COIBufferCreate`).
    pub fn create_buffer(&self, size: u64) -> Result<Arc<CoiBuffer>, CoiError> {
        let id = {
            let mut n = self.inner.next_buf_id.lock();
            let id = *n;
            *n += 1;
            id
        };
        // Acquire the client lock *before* resolving the endpoint: a call
        // that blocks across a swap must use the post-restore channel.
        self.inner.cmd_lock.acquire();
        let cmd = match self.eps() {
            Ok((_, cmd, _)) => cmd,
            Err(e) => {
                self.inner.cmd_lock.release();
                return Err(e);
            }
        };
        self.inner.config.charge_hook();
        let send = cmd.send(CmdMsg::CreateBuffer { id, size }.encode());
        let reply = if send.is_ok() {
            Self::await_cmd(&cmd)
        } else {
            Err(CoiError::Closed)
        };
        self.inner.cmd_lock.release();
        match reply? {
            CmdMsg::BufferCreated {
                id: rid,
                addr,
                error,
            } => {
                if rid != id {
                    return Err(CoiError::Protocol("buffer id mismatch".into()));
                }
                if addr == 0 {
                    return Err(CoiError::OutOfMemory(error));
                }
                let buf = Arc::new(CoiBuffer {
                    id,
                    size,
                    addr: SimMutex::new(format!("buf addr {id}"), RdmaAddr(addr)),
                });
                self.inner.buffers.lock().insert(id, Arc::clone(&buf));
                Ok(buf)
            }
            other => Err(CoiError::Protocol(format!(
                "unexpected cmd reply {other:?}"
            ))),
        }
    }

    /// Destroy a COI buffer (`COIBufferDestroy`).
    pub fn destroy_buffer(&self, buf: &CoiBuffer) -> Result<(), CoiError> {
        self.inner.cmd_lock.acquire();
        let cmd = match self.eps() {
            Ok((_, cmd, _)) => cmd,
            Err(e) => {
                self.inner.cmd_lock.release();
                return Err(e);
            }
        };
        self.inner.config.charge_hook();
        let send = cmd.send(CmdMsg::DestroyBuffer { id: buf.id }.encode());
        let reply = if send.is_ok() {
            Self::await_cmd(&cmd)
        } else {
            Err(CoiError::Closed)
        };
        self.inner.cmd_lock.release();
        reply?;
        self.inner.buffers.lock().remove(&buf.id);
        Ok(())
    }

    fn await_cmd(cmd: &ScifEndpoint) -> Result<CmdMsg, CoiError> {
        loop {
            let p = cmd.recv().map_err(CoiError::Scif)?;
            match CmdMsg::decode(&p) {
                Ok(m) => return Ok(m),
                Err(_) => continue,
            }
        }
    }

    /// Write `data` into a buffer over RDMA (`COIBufferWrite` — §4.1
    /// case 2 lock around the `scif_writeto` call site).
    pub fn buffer_write(&self, buf: &CoiBuffer, data: Payload) -> Result<(), CoiError> {
        assert_eq!(data.len(), buf.size, "COI buffer writes are whole-buffer");
        self.inner.rdma.acquire();
        self.inner.config.charge_hook();
        let r = self
            .inner
            .scif
            .rdma_write_from(NodeId::HOST, buf.addr(), 0, data)
            .map_err(CoiError::Scif);
        self.inner.rdma.release();
        r
    }

    /// Read a buffer's contents over RDMA (`COIBufferRead`).
    pub fn buffer_read(&self, buf: &CoiBuffer) -> Result<Payload, CoiError> {
        self.inner.rdma.acquire();
        self.inner.config.charge_hook();
        let r = self
            .inner
            .scif
            .rdma_read_from(NodeId::HOST, buf.addr(), 0, buf.size)
            .map_err(CoiError::Scif);
        self.inner.rdma.release();
        r
    }

    /// Launch an offload function asynchronously (`COIPipelineRunFunction`;
    /// Fig 4 step 1 — a blocking send inside a critical region under
    /// Snapify).
    pub fn run(
        &self,
        function: &str,
        args: Vec<u8>,
        buffers: &[&CoiBuffer],
    ) -> Result<RunHandle, CoiError> {
        let id = {
            let mut n = self.inner.next_run_id.lock();
            let id = *n;
            *n += 1;
            id
        };
        let ch = SimChannel::unbounded(format!("run-result-{id}"));
        self.inner.pending.lock().insert(id, ch.clone());
        let msg = RunMsg::Request {
            id,
            function: function.to_string(),
            args,
            buffers: buffers.iter().map(|b| b.id).collect(),
        };
        // Acquire the case-4 lock before resolving the endpoint (see
        // create_buffer).
        self.inner.run_send.acquire();
        let run = match self.eps() {
            Ok((run, _, _)) => run,
            Err(e) => {
                self.inner.run_send.release();
                self.inner.pending.lock().remove(&id);
                return Err(e);
            }
        };
        self.inner.config.charge_hook();
        let sent = run.send(msg.encode());
        self.inner.run_send.release();
        if sent.is_err() {
            self.inner.pending.lock().remove(&id);
            return Err(CoiError::Closed);
        }
        Ok(RunHandle { id, rx: ch })
    }

    /// Launch an offload function and wait for its return value.
    pub fn run_sync(
        &self,
        function: &str,
        args: Vec<u8>,
        buffers: &[&CoiBuffer],
    ) -> Result<Vec<u8>, CoiError> {
        self.run(function, args, buffers)?.wait()
    }

    /// Host-collected COI log records.
    pub fn logs(&self) -> Vec<Vec<u8>> {
        self.inner.logs.lock().clone()
    }

    /// Host-collected COI event records.
    pub fn events(&self) -> Vec<Vec<u8>> {
        self.inner.events.lock().clone()
    }

    /// Ping the offload process over the cmd channel.
    pub fn ping(&self) -> Result<(), CoiError> {
        self.inner.cmd_lock.acquire();
        let cmd = match self.eps() {
            Ok((_, cmd, _)) => cmd,
            Err(e) => {
                self.inner.cmd_lock.release();
                return Err(e);
            }
        };
        self.inner.config.charge_hook();
        let send = cmd.send(CmdMsg::Ping.encode());
        let reply = if send.is_ok() {
            Self::await_cmd(&cmd)
        } else {
            Err(CoiError::Closed)
        };
        self.inner.cmd_lock.release();
        match reply? {
            CmdMsg::Pong => Ok(()),
            other => Err(CoiError::Protocol(format!(
                "unexpected ping reply {other:?}"
            ))),
        }
    }

    /// Destroy the offload process (`COIProcessDestroy`; §4.1 case 1
    /// critical region).
    pub fn destroy(&self) -> Result<(), CoiError> {
        self.inner.lifecycle.acquire();
        let r = self.destroy_locked();
        self.inner.lifecycle.release();
        r
    }

    fn destroy_locked(&self) -> Result<(), CoiError> {
        let (_, _, ctl) = self.eps()?;
        ctl.send(CtlMsg::DestroyProcess { pid: self.pid() }.encode())
            .map_err(CoiError::Scif)?;
        let reply = self.await_reply()?;
        if !matches!(reply, CtlMsg::DestroyAck) {
            return Err(CoiError::Protocol(format!(
                "unexpected destroy reply {reply:?}"
            )));
        }
        self.close_endpoints();
        Ok(())
    }

    fn close_endpoints(&self) {
        let mut eps = self.inner.eps.lock();
        if let Some(e) = eps.take() {
            e.run.close();
            e.cmd.close();
            e.log.close();
            e.event.close();
            e.ctl.close();
        }
    }

    /// Close the current endpoint set but keep `keep` (a freshly-opened
    /// ctl to the restore target, which may be the same daemon).
    fn close_endpoints_except(&self, keep: &ScifEndpoint) {
        let mut eps = self.inner.eps.lock();
        if let Some(e) = eps.take() {
            e.run.close();
            e.cmd.close();
            e.log.close();
            e.event.close();
            if e.ctl.conn_id() != keep.conn_id() {
                e.ctl.close();
            }
        }
    }

    // ------------------------------------------------------------------
    // Snapify plumbing (used by the `snapify` crate's API functions)
    // ------------------------------------------------------------------

    /// Drain the host side (§4.1): acquire the lifecycle (case 1), RDMA
    /// (case 2), cmd-client (case 3, with shutdown marker), and
    /// run-request (case 4) locks, then wait for the outbound run channel
    /// to empty. Held until [`CoiProcessHandle::snapify_release_host`].
    pub fn snapify_drain_host(&self) -> Result<(), CoiError> {
        self.inner.lifecycle.acquire();
        self.inner.rdma.acquire();
        // Case 3 (host is the client of the cmd channel): lock, then send
        // the shutdown marker and wait for the server's ack.
        let (run, cmd, _) = match self.eps() {
            Ok(e) => e,
            Err(e) => {
                self.inner.lifecycle.release();
                self.inner.rdma.release();
                return Err(e);
            }
        };
        self.inner.cmd_lock.acquire();
        self.inner.config.charge_hook();
        cmd.send(CmdMsg::Shutdown.encode())
            .map_err(CoiError::Scif)?;
        loop {
            let p = cmd.recv().map_err(CoiError::Scif)?;
            if matches!(CmdMsg::decode(&p), Ok(CmdMsg::ShutdownAck)) {
                break;
            }
        }
        // Case 4: no further run-function requests.
        self.inner.run_send.acquire();
        while run.outbound_pending() > 0 {
            simkernel::sleep(self.inner.config.poll_interval);
        }
        Ok(())
    }

    /// Acquire every host-side drain lock without touching channels.
    /// Used on a freshly-detached handle after a host restart, where the
    /// checkpoint was taken inside the paused region: the locks are
    /// conceptually held until the post-restore resume.
    pub fn snapify_hold_host_locks(&self) {
        self.inner.lifecycle.acquire();
        self.inner.rdma.acquire();
        self.inner.cmd_lock.acquire();
        self.inner.run_send.acquire();
    }

    /// Release every host-side drain lock (the host half of
    /// `snapify_resume`).
    pub fn snapify_release_host(&self) {
        self.inner.run_send.release_if_held();
        self.inner.cmd_lock.release_if_held();
        self.inner.rdma.release_if_held();
        self.inner.lifecycle.release_if_held();
    }

    /// Send a Snapify control message to the daemon.
    pub fn snapify_send_ctl(&self, msg: CtlMsg) -> Result<(), CoiError> {
        let (_, _, ctl) = self.eps()?;
        ctl.send(msg.encode()).map_err(CoiError::Scif)
    }

    /// Await the next synchronous daemon reply.
    pub fn snapify_await_reply(&self) -> Result<CtlMsg, CoiError> {
        self.await_reply()
    }

    /// Await an asynchronous capture-completion notification.
    pub fn snapify_await_capture(&self) -> Result<CtlMsg, CoiError> {
        self.inner.capture_done.recv().map_err(|_| CoiError::Closed)
    }

    /// After a capture with `terminate` (swap-out): tear down the host
    /// side of the now-dead connections.
    pub fn snapify_detach(&self) {
        self.close_endpoints();
    }

    /// Rewire the handle to a restored offload process: fresh ctl to
    /// `device`'s daemon, fresh data channels on `ports`, new pid, and the
    /// (buffer, old, new) RDMA address translations applied.
    pub fn snapify_attach(
        &self,
        device: usize,
        pid: u64,
        ports: [u16; 4],
        addr_table: &[(u64, u64, u64, u64)],
        ctl: ScifEndpoint,
    ) -> Result<(), CoiError> {
        self.close_endpoints_except(&ctl);
        self.connect_data_channels(device, ports, ctl)?;
        *self.inner.device.lock() = device;
        *self.inner.pid.lock() = pid;
        let mut buffers = self.inner.buffers.lock();
        let mut max_id = 0;
        for (id, size, old, new) in addr_table {
            max_id = max_id.max(*id);
            match buffers.get(id) {
                Some(buf) => {
                    // Existing handle: apply the (old, new) translation.
                    let mut addr = buf.addr.lock();
                    debug_assert_eq!(addr.0, *old, "stale RDMA address in translation table");
                    *addr = RdmaAddr(*new);
                }
                None => {
                    // Restart path (a restored *host* process adopting the
                    // snapshot's buffers): recreate the handle entry.
                    buffers.insert(
                        *id,
                        Arc::new(CoiBuffer {
                            id: *id,
                            size: *size,
                            addr: SimMutex::new(format!("buf addr {id}"), RdmaAddr(*new)),
                        }),
                    );
                }
            }
        }
        drop(buffers);
        let mut next = self.inner.next_buf_id.lock();
        *next = (*next).max(max_id + 1);
        Ok(())
    }

    /// A detached handle: no offload process yet. Used when a restarted
    /// host process re-adopts a swapped-out/checkpointed offload process
    /// via `snapify_restore`.
    pub fn new_detached(
        config: &CoiConfig,
        scif: &Scif,
        host_proc: &SimProcess,
        binary: &str,
        binary_image_bytes: u64,
    ) -> CoiProcessHandle {
        let pid_tag = host_proc.pid().0;
        CoiProcessHandle {
            inner: Arc::new(HandleInner {
                config: config.clone(),
                scif: scif.clone(),
                host_proc: host_proc.clone(),
                binary: binary.to_string(),
                binary_image_bytes,
                device: SimMutex::new(format!("hdl dev {pid_tag}"), 0),
                pid: SimMutex::new(format!("hdl pid {pid_tag}"), 0),
                eps: SimMutex::new(format!("hdl eps {pid_tag}"), None),
                pending: Arc::new(SimMutex::new(
                    format!("hdl pending {pid_tag}"),
                    HashMap::new(),
                )),
                next_run_id: SimMutex::new(format!("hdl runid {pid_tag}"), 1),
                next_buf_id: SimMutex::new(format!("hdl bufid {pid_tag}"), 1),
                buffers: SimMutex::new(format!("hdl buffers {pid_tag}"), BTreeMap::new()),
                lifecycle: DrainLock::new(format!("lifecycle {pid_tag}")),
                rdma: DrainLock::new(format!("rdma {pid_tag}")),
                cmd_lock: DrainLock::new(format!("cmd-client {pid_tag}")),
                run_send: DrainLock::new(format!("run-send {pid_tag}")),
                ctl_replies: SimChannel::unbounded(format!("ctl-replies {pid_tag}")),
                capture_done: SimChannel::unbounded(format!("capture-done {pid_tag}")),
                logs: SimMutex::new(format!("hdl logs {pid_tag}"), Vec::new()),
                events: SimMutex::new(format!("hdl events {pid_tag}"), Vec::new()),
            }),
        }
    }

    /// Buffer handles, sorted by id (used after a restart to re-adopt
    /// the restored process's buffers).
    pub fn buffers(&self) -> Vec<Arc<CoiBuffer>> {
        self.inner.buffers.lock().values().cloned().collect()
    }

    /// Restore-time ctl connection: used by `snapify_restore` to reach the
    /// *target* device's daemon before the handle is rewired.
    pub fn snapify_connect_ctl(&self, device: usize) -> Result<ScifEndpoint, CoiError> {
        self.connect_ctl(device)
    }

    /// The run endpoint's outbound in-flight count (drain diagnostics).
    pub fn run_outbound_pending(&self) -> usize {
        self.inner
            .eps
            .lock()
            .as_ref()
            .map(|e| e.run.outbound_pending())
            .unwrap_or(0)
    }
}
