//! Snapshot storage abstraction.
//!
//! The COI-side Snapify machinery streams local stores and process images
//! to and from *the host's* file system without caring how the bytes cross
//! the PCIe bus. [`SnapshotStorage`] is that seam: the `snapify-io` crate
//! provides the RDMA-based implementation (and the NFS/scp baselines);
//! [`DirectStorage`] is a simple pass-through used by COI's own tests,
//! which charges only the PCIe RDMA and host-fs costs.

use phi_platform::{NodeId, Payload, PhiServer};
use simproc::{ByteSink, ByteSource, FsSink, FsSource, IoError};

pub use simproc::SnapshotStorage;

/// Pass-through storage: charges the raw PCIe RDMA cost per chunk plus the
/// host file-system cost, with no daemon pipeline. A lower bound useful
/// for tests; real experiments use the `snapify-io` implementations.
pub struct DirectStorage {
    server: PhiServer,
}

impl DirectStorage {
    /// Direct storage over `server`'s links.
    pub fn new(server: &PhiServer) -> DirectStorage {
        DirectStorage {
            server: server.clone(),
        }
    }
}

struct DirectSink {
    server: PhiServer,
    local: NodeId,
    inner: FsSink,
}

impl ByteSink for DirectSink {
    fn write(&mut self, data: Payload) -> Result<(), IoError> {
        if !self.local.is_host() {
            self.server
                .rdma_between(self.local, NodeId::HOST, data.len().max(1));
        }
        self.inner.write(data)
    }

    fn close(&mut self) -> Result<(), IoError> {
        self.inner.close()
    }

    fn mark_boundary(&mut self) {
        self.inner.mark_boundary();
    }
}

struct DirectSource {
    server: PhiServer,
    local: NodeId,
    inner: FsSource,
}

impl ByteSource for DirectSource {
    fn read(&mut self, max: u64) -> Result<Option<Payload>, IoError> {
        let chunk = self.inner.read(max)?;
        if let Some(c) = &chunk {
            if !self.local.is_host() {
                self.server
                    .rdma_between(NodeId::HOST, self.local, c.len().max(1));
            }
        }
        Ok(chunk)
    }
}

impl SnapshotStorage for DirectStorage {
    fn sink(&self, local: NodeId, path: &str) -> Result<Box<dyn ByteSink>, IoError> {
        Ok(Box::new(DirectSink {
            server: self.server.clone(),
            local,
            inner: FsSink::create(self.server.host().fs(), path),
        }))
    }

    fn source(&self, local: NodeId, path: &str) -> Result<Box<dyn ByteSource>, IoError> {
        Ok(Box::new(DirectSource {
            server: self.server.clone(),
            local,
            inner: FsSource::open(self.server.host().fs(), path)?,
        }))
    }

    fn label(&self) -> &'static str {
        "direct"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_platform::GB;
    use simkernel::{now, Kernel};

    #[test]
    fn direct_roundtrip_charges_pcie() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let storage = DirectStorage::new(&server);
            let dev = NodeId::device(0);
            let mut sink = storage.sink(dev, "/snap/ls").unwrap();
            let data = Payload::synthetic(1, GB);
            let t0 = now();
            for chunk in data.chunks(4 << 20) {
                sink.write(chunk).unwrap();
            }
            sink.close().unwrap();
            let elapsed = now() - t0;
            // ≥ 1 GiB / 6 GB/s ≈ 179 ms of DMA time.
            assert!(elapsed.as_secs_f64() > 0.15, "elapsed = {elapsed}");
            let (bytes, _) = server.link(0).rdma_stats();
            assert_eq!(bytes, GB);

            let mut src = storage.source(dev, "/snap/ls").unwrap();
            let mut got = Payload::empty();
            while let Some(c) = src.read(4 << 20).unwrap() {
                got.append(c);
            }
            assert_eq!(got.digest(), data.digest());
        });
    }

    #[test]
    fn source_for_missing_path_fails() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let storage = DirectStorage::new(&server);
            assert!(storage.source(NodeId::device(0), "/nope").is_err());
        });
    }
}
