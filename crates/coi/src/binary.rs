//! Device binaries and offload functions.
//!
//! The Xeon Phi compiler emits one shared library per offload application;
//! each offload region becomes a named function in it (§2). Here a
//! [`DeviceBinary`] is a registry of [`OffloadFn`]s plus the sizes that
//! drive the cost model (bytes shipped over PCIe at load; resident private
//! memory, which is what the device-side BLCR snapshot captures).
//!
//! # Resumable execution
//!
//! Real BLCR can snapshot a thread mid-instruction. The simulated
//! equivalent is that offload functions are *step machines*: `step(ctx,
//! cursor)` performs one slice of work (charging virtual compute time and
//! mutating buffers/regions) and returns [`StepOutcome::Yield`] until it
//! finishes. The cursor is part of the pipeline state that a snapshot
//! saves, so a capture taken mid-function restores and resumes from the
//! last completed step — the observable behaviour §4.1 (case 4) requires.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use phi_platform::{Payload, SimNode};

use crate::offload::OffloadRuntime;

/// Outcome of one offload-function step.
pub enum StepOutcome {
    /// More steps remain; the cursor advances by one.
    Yield,
    /// The function finished with this return value.
    Done(Vec<u8>),
}

/// Execution context handed to an [`OffloadFn`] step.
pub struct OffloadCtx<'a> {
    pub(crate) rt: &'a OffloadRuntime,
    /// Misc argument bytes from the run request.
    pub args: Vec<u8>,
    pub(crate) buffers: Vec<u64>,
}

impl OffloadCtx<'_> {
    /// The node executing this function.
    pub fn node(&self) -> &SimNode {
        self.rt.node()
    }

    /// Execute `flops` of parallel work on `threads` threads (blocks for
    /// the modeled time).
    pub fn compute(&self, flops: f64, threads: u32) {
        self.rt.node().parallel_compute(flops, threads);
    }

    /// Number of buffers passed to this run.
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    /// Size of the `i`-th buffer.
    pub fn buffer_len(&self, i: usize) -> u64 {
        self.rt.buffer_payload(self.buffers[i]).len()
    }

    /// Read the `i`-th buffer's contents (charges a device memcpy).
    pub fn read_buffer(&self, i: usize) -> Payload {
        let p = self.rt.buffer_payload(self.buffers[i]);
        self.rt.node().memcpy(p.len());
        p
    }

    /// Overwrite the `i`-th buffer (must keep its size; charges a device
    /// memcpy).
    pub fn write_buffer(&self, i: usize, data: Payload) {
        self.rt.node().memcpy(data.len());
        self.rt.buffer_store(self.buffers[i], data);
    }

    /// Read a private (offload-process-local) region, or `None` if it has
    /// not been created. Private regions persist across offload regions
    /// (§3 "Saving data private to an offload process") and are captured
    /// in the device snapshot.
    pub fn private(&self, name: &str) -> Option<Payload> {
        let full = format!("app/{name}");
        self.rt.proc().memory().region(&full).ok()
    }

    /// Create or replace a private region.
    pub fn set_private(&self, name: &str, data: Payload) {
        let full = format!("app/{name}");
        let mem = self.rt.proc().memory();
        if mem.has_region(&full) {
            mem.update_region(&full, data)
                .expect("private region update OOM");
        } else {
            mem.map_region(&full, data).expect("private region map OOM");
        }
    }

    /// Emit a log record (queued; a dedicated client thread ships it to
    /// the host over the COI log channel).
    pub fn log(&self, record: Vec<u8>) {
        self.rt.enqueue_log(record);
    }
}

/// One offload function (the body of an `#pragma offload` region).
pub trait OffloadFn: Send + Sync {
    /// Execute step `cursor`. Must be deterministic given the process
    /// state; the runtime persists `cursor` across snapshots.
    fn step(&self, ctx: &mut OffloadCtx<'_>, cursor: u64) -> StepOutcome;
}

/// Adapter: a plain closure as a single-step offload function.
pub struct FnOnceStep<F>(pub F);

impl<F> OffloadFn for FnOnceStep<F>
where
    F: Fn(&mut OffloadCtx<'_>) -> Vec<u8> + Send + Sync,
{
    fn step(&self, ctx: &mut OffloadCtx<'_>, _cursor: u64) -> StepOutcome {
        StepOutcome::Done((self.0)(ctx))
    }
}

/// The compiled device side of an offload application.
pub struct DeviceBinary {
    name: String,
    /// Bytes shipped host→device when the process is created.
    pub image_bytes: u64,
    /// Private memory mapped at load (text + data + initial heap): the
    /// base size of the device snapshot.
    pub resident_bytes: u64,
    functions: HashMap<String, Arc<dyn OffloadFn>>,
}

impl DeviceBinary {
    /// New binary with the given transfer/resident sizes.
    pub fn new(name: impl Into<String>, image_bytes: u64, resident_bytes: u64) -> DeviceBinary {
        DeviceBinary {
            name: name.into(),
            image_bytes,
            resident_bytes,
            functions: HashMap::new(),
        }
    }

    /// The binary's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register an offload function.
    pub fn function(mut self, name: impl Into<String>, f: Arc<dyn OffloadFn>) -> DeviceBinary {
        self.functions.insert(name.into(), f);
        self
    }

    /// Register a single-step closure function.
    pub fn simple_function<F>(self, name: impl Into<String>, f: F) -> DeviceBinary
    where
        F: Fn(&mut OffloadCtx<'_>) -> Vec<u8> + Send + Sync + 'static,
    {
        self.function(name, Arc::new(FnOnceStep(f)))
    }

    /// Look up a function.
    pub fn get(&self, name: &str) -> Option<Arc<dyn OffloadFn>> {
        self.functions.get(name).cloned()
    }
}

/// World-wide registry of device binaries (what the MPSS loader would find
/// on the host file system).
#[derive(Clone, Default)]
pub struct FunctionRegistry {
    binaries: Arc<Mutex<HashMap<String, Arc<DeviceBinary>>>>,
}

impl FunctionRegistry {
    /// Empty registry.
    pub fn new() -> FunctionRegistry {
        FunctionRegistry::default()
    }

    /// Register a binary (replaces a same-named one).
    pub fn register(&self, binary: DeviceBinary) {
        self.binaries
            .lock()
            .unwrap()
            .insert(binary.name().to_string(), Arc::new(binary));
    }

    /// Look up a binary by name.
    pub fn get(&self, name: &str) -> Option<Arc<DeviceBinary>> {
        self.binaries.lock().unwrap().get(name).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TwoStep;
    impl OffloadFn for TwoStep {
        fn step(&self, _ctx: &mut OffloadCtx<'_>, cursor: u64) -> StepOutcome {
            if cursor < 1 {
                StepOutcome::Yield
            } else {
                StepOutcome::Done(vec![cursor as u8])
            }
        }
    }

    #[test]
    fn registry_lookup() {
        let reg = FunctionRegistry::new();
        reg.register(DeviceBinary::new("md.so", 1 << 20, 8 << 20).function("f", Arc::new(TwoStep)));
        let b = reg.get("md.so").unwrap();
        assert_eq!(b.name(), "md.so");
        assert!(b.get("f").is_some());
        assert!(b.get("g").is_none());
        assert!(reg.get("nope.so").is_none());
    }

    #[test]
    fn registry_replaces() {
        let reg = FunctionRegistry::new();
        reg.register(DeviceBinary::new("a.so", 1, 1));
        reg.register(DeviceBinary::new("a.so", 2, 2));
        assert_eq!(reg.get("a.so").unwrap().image_bytes, 2);
    }
}
