//! Tiny binary codec for COI control messages.
//!
//! COI control traffic flows over SCIF message channels, which carry
//! [`Payload`]s; control records are small and always real bytes. This
//! module provides a minimal, dependency-free encoder/decoder (little-
//! endian, length-prefixed) used by [`crate::msgs`].

use phi_platform::Payload;

/// Encoder accumulating into a byte vector.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// New empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Append a tag byte.
    pub fn tag(mut self, t: u8) -> Enc {
        self.buf.push(t);
        self
    }

    /// Append a `u64`.
    pub fn u64(mut self, v: u64) -> Enc {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u16`.
    pub fn u16(mut self, v: u16) -> Enc {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a bool.
    pub fn boolean(mut self, v: bool) -> Enc {
        self.buf.push(v as u8);
        self
    }

    /// Append a length-prefixed string.
    pub fn string(mut self, s: &str) -> Enc {
        self = self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Append length-prefixed bytes.
    pub fn bytes(mut self, b: &[u8]) -> Enc {
        self = self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
        self
    }

    /// Append a length-prefixed list via a per-item closure.
    pub fn list<T>(mut self, items: &[T], mut f: impl FnMut(Enc, &T) -> Enc) -> Enc {
        self = self.u64(items.len() as u64);
        for it in items {
            self = f(self, it);
        }
        self
    }

    /// Finish into a payload.
    pub fn payload(self) -> Payload {
        Payload::bytes(self.buf)
    }

    /// Finish into raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Decoder over a byte slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Decode failure (malformed control message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

impl<'a> Dec<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        // Checked arithmetic: a hostile/corrupt length prefix must not
        // overflow the bounds check.
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| DecodeError(format!("length overflow: {n} at {}", self.pos)))?;
        if end > self.buf.len() {
            return Err(DecodeError(format!(
                "truncated: need {n} at {}, have {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read a tag byte.
    pub fn tag(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a bool.
    pub fn boolean(&mut self) -> Result<bool, DecodeError> {
        Ok(self.take(1)?[0] != 0)
    }

    /// Read a length-prefixed string.
    pub fn string(&mut self) -> Result<String, DecodeError> {
        let n = self.u64()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|e| DecodeError(format!("bad utf8: {e}")))
    }

    /// Read length-prefixed bytes.
    pub fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let n = self.u64()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// Read a length-prefixed list via a per-item closure.
    pub fn list<T>(
        &mut self,
        mut f: impl FnMut(&mut Dec<'a>) -> Result<T, DecodeError>,
    ) -> Result<Vec<T>, DecodeError> {
        let n = self.u64()? as usize;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Whether all bytes were consumed.
    pub fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let bytes = Enc::new()
            .tag(7)
            .u64(0xdead_beef_1234)
            .u16(999)
            .boolean(true)
            .string("hello")
            .bytes(&[1, 2, 3])
            .list(&[10u64, 20, 30], |e, v| e.u64(*v))
            .into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.tag().unwrap(), 7);
        assert_eq!(d.u64().unwrap(), 0xdead_beef_1234);
        assert_eq!(d.u16().unwrap(), 999);
        assert!(d.boolean().unwrap());
        assert_eq!(d.string().unwrap(), "hello");
        assert_eq!(d.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.list(|d| d.u64()).unwrap(), vec![10, 20, 30]);
        assert!(d.finished());
    }

    #[test]
    fn truncation_is_an_error() {
        let bytes = Enc::new().u64(5).into_bytes();
        let mut d = Dec::new(&bytes[..4]);
        assert!(d.u64().is_err());
    }

    #[test]
    fn hostile_length_prefix_does_not_overflow() {
        // A corrupt stream claiming a near-u64::MAX string length must be
        // rejected, not overflow the cursor arithmetic.
        let bytes = [0xFFu8; 16];
        let mut d = Dec::new(&bytes);
        assert!(d.string().is_err());
        let mut d = Dec::new(&bytes);
        assert!(d.bytes().is_err());
    }

    #[test]
    fn empty_string_and_bytes() {
        let bytes = Enc::new().string("").bytes(&[]).into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.string().unwrap(), "");
        assert!(d.bytes().unwrap().is_empty());
        assert!(d.finished());
    }
}
