//! `LatencySketch` — an HDR-histogram-style percentile sketch with
//! bounded relative error.
//!
//! Values are binned log-linearly: the first octaves (values below
//! `2^SUB_BITS`) are recorded exactly, and every octave `[2^e, 2^(e+1))`
//! above that is split into `2^SUB_BITS` equal-width sub-buckets. A
//! reported quantile is therefore off from the true value by at most one
//! sub-bucket width, i.e. a relative error of `2^-SUB_BITS` (~3.1% at
//! the default 5 sub-bucket bits) — tight enough to assert p50/p99/p999
//! tail-latency SLOs while the bucket layout stays a fixed function of
//! the value, never of the data, so merged and exported output is
//! deterministic.

/// Sub-bucket bits per octave: each power-of-two range is split into
/// `2^SUB_BITS` linear buckets.
const SUB_BITS: usize = 5;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Octaves above the exact range (`e` in `SUB_BITS..=63`).
const OCTAVES: usize = 64 - SUB_BITS;
/// Total bucket count.
const BUCKETS: usize = SUB + OCTAVES * SUB;

/// A bounded-error percentile sketch over `u64` observations
/// (typically latencies in nanoseconds). See the module docs for the
/// binning scheme and error bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencySketch {
    /// Per-bucket observation counts (log-linear layout).
    counts: Vec<u64>,
    /// Number of observations.
    count: u64,
    /// Sum of observations (saturating).
    sum: u64,
    /// Smallest observation.
    min: u64,
    /// Largest observation.
    max: u64,
}

impl Default for LatencySketch {
    fn default() -> LatencySketch {
        LatencySketch {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

/// Bucket index of a value. Values below `SUB` map to themselves;
/// larger values map to `SUB + (e - SUB_BITS) * SUB + sub` where `e`
/// is the value's octave and `sub` its top `SUB_BITS` mantissa bits.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (e - SUB_BITS)) as usize) & (SUB - 1);
        SUB + (e - SUB_BITS) * SUB + sub
    }
}

/// Largest value that lands in bucket `idx` (the reported quantile
/// value, so reported quantiles never under-estimate).
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let rel = idx - SUB;
        let e = rel / SUB + SUB_BITS;
        let sub = (rel % SUB) as u64;
        let width = 1u64 << (e - SUB_BITS);
        (1u64 << e) + sub * width + (width - 1)
    }
}

impl LatencySketch {
    /// New empty sketch.
    pub fn new() -> LatencySketch {
        LatencySketch::default()
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Maximum relative error of a reported quantile.
    pub fn max_relative_error() -> f64 {
        1.0 / SUB as f64
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded distribution,
    /// within [`LatencySketch::max_relative_error`] of the true value.
    /// Returns 0 for an empty sketch. The extreme quantiles are exact:
    /// `q = 0` reports the recorded minimum and the top rank reports
    /// the recorded maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                // Clamp into the recorded range: the edge buckets may
                // extend past the true min/max.
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Merge another sketch into this one. Merging an empty sketch is
    /// a no-op; merging into an empty sketch copies `other`.
    pub fn merge(&mut self, other: &LatencySketch) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Reset to empty without reallocating the bucket array.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0;
        self.min = 0;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_cover_u64() {
        // Bucket index is monotone in the value and the last bucket is
        // exactly the final slot.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(SUB as u64 - 1), SUB - 1);
        assert_eq!(bucket_of(SUB as u64), SUB);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        let mut prev = 0;
        for v in [1u64, 31, 32, 63, 64, 1000, 1 << 20, 1 << 40, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket index must be monotone");
            assert!(bucket_upper(b) >= v, "upper bound below the value");
            prev = b;
        }
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut s = LatencySketch::new();
        for v in 1..=100_000u64 {
            s.observe(v * 17);
        }
        for q in [0.5f64, 0.9, 0.99, 0.999] {
            let truth = ((q * 100_000.0).ceil() as u64) * 17;
            let got = s.quantile(q);
            let err = (got as f64 - truth as f64).abs() / truth as f64;
            assert!(
                err <= LatencySketch::max_relative_error(),
                "q={q}: got {got}, truth {truth}, err {err}"
            );
            assert!(got >= truth, "reported quantile must not under-estimate");
        }
        assert_eq!(s.quantile(0.0), 17);
        assert_eq!(s.quantile(1.0), 1_700_000);
    }

    #[test]
    fn empty_and_single_value() {
        let s = LatencySketch::new();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.count(), 0);
        let mut s = LatencySketch::new();
        s.observe(42);
        assert_eq!((s.p50(), s.p99(), s.p999()), (42, 42, 42));
        assert_eq!((s.min(), s.max(), s.sum()), (42, 42, 42));
    }

    #[test]
    fn merge_handles_empty_sides() {
        let mut a = LatencySketch::new();
        let empty = LatencySketch::new();
        a.merge(&empty);
        assert_eq!(a.count(), 0);
        let mut b = LatencySketch::new();
        b.observe(10);
        b.observe(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!((a.min(), a.max()), (10, 1000));
        let mut c = LatencySketch::new();
        c.observe(5);
        a.merge(&c);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 5);
        assert_eq!(a.p999(), 1000);
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut s = LatencySketch::new();
        s.observe(u64::MAX);
        s.observe(u64::MAX);
        s.observe(0);
        assert_eq!(s.sum(), u64::MAX, "sum saturates");
        assert_eq!(s.max(), u64::MAX);
        assert_eq!(s.p999(), u64::MAX);
    }
}
