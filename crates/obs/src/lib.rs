//! # snapify-obs — deterministic virtual-time tracing and metrics
//!
//! The observability layer of the Snapify reproduction. Everything the
//! paper measures is phase-level timing — pause/capture/resume overheads
//! (Fig 9/10), restore/swap/migrate breakdowns, snapshot I/O cost per
//! backend (Table 3) — so this crate records:
//!
//! * **structured spans** ([`span!`]) — typed begin/end events stamped
//!   with the *virtual* clock, nested parent/child per simulated thread;
//! * a **metrics registry** — named counters, gauges, and fixed-bucket
//!   (power-of-two) histograms, plus **dimensional metrics** keyed by
//!   `(name, labels)` with interned label sets ([`labels`]) and
//!   bounded-error percentile sketches ([`LatencySketch`]);
//! * a **bounded flight recorder** — the event log is a fixed-capacity
//!   ring (`OBS_FLIGHT_CAPACITY`, default 65536) so always-on runs cost
//!   O(capacity) memory and failure dumps carry the last-N events;
//! * an **SLO monitor** ([`SloMonitor`]) — windowed per-tenant quantile
//!   checks in virtual time, emitting typed [`SloBreach`] records;
//! * **exporters** — Chrome trace-event JSON (loadable in Perfetto /
//!   `chrome://tracing`) and a plain-text / JSON summary reproducing the
//!   paper's stacked-bar phase breakdowns and per-backend I/O tables.
//!
//! ## Determinism
//!
//! All timestamps come from an installed [`Clock`] (the simulation
//! kernel installs `simkernel::now()`), events are appended in scheduler
//! order, and every aggregate lives in a `BTreeMap` — so two identical
//! simulation runs export **byte-identical** traces and summaries. No
//! wall-clock time or randomness is ever consulted.
//!
//! ## Cost when disabled
//!
//! Recording is disabled by default. Every recording entry point checks
//! one relaxed atomic load and returns; the [`span!`] macro does not even
//! format its fields unless recording is enabled.
//!
//! This crate is re-exported as `simkernel::obs`, which is how the rest
//! of the workspace uses it.

#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod labels;
pub mod recorder;
pub mod sketch;
pub mod slo;

pub use event::{Event, SpanId};
pub use export::{chrome_trace, summary_json, summary_text, LabeledMetric, MetricValue, Summary};
pub use labels::{
    counter_add_at, counter_add_labeled, counter_id, gauge_id, gauge_set_at, gauge_set_labeled,
    histogram_id, histogram_observe_at, histogram_observe_labeled, render_key, sketch_id,
    sketch_observe, sketch_observe_at, sketch_observe_labeled, MetricId,
};
pub use recorder::{
    counter_add, disable, enable, events, events_since, events_total, flight_capacity, flight_tail,
    gauge_set, histogram_observe, install_clock, instant, is_enabled, meta, reset, set_meta,
    span_begin, Clock, DurationStat, Histogram, SpanGuard, DEFAULT_FLIGHT_CAPACITY,
};
pub use sketch::LatencySketch;
pub use slo::{SloBreach, SloMonitor, SloSpec};

/// Open a span: records a typed begin event now and the matching end
/// event when the returned guard is dropped, both stamped with the
/// virtual clock and nested under the calling simulated thread's
/// innermost open span.
///
/// ```
/// use snapify_obs as obs;
/// obs::enable();
/// {
///     let _g = obs::span!("snapify.pause", device = 0, pid = 42);
///     // ... phase body ...
/// } // end recorded here
/// obs::disable();
/// ```
///
/// When recording is disabled the macro returns an inert guard without
/// evaluating or formatting any field expression.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span_begin($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        if $crate::is_enabled() {
            $crate::span_begin(
                $name,
                vec![$((stringify!($key), format!("{}", $val))),+],
            )
        } else {
            $crate::SpanGuard::inert()
        }
    };
}
