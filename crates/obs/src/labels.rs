//! Dimensional (labeled) metrics: counters, gauges, histograms, and
//! latency sketches keyed by `(name, label set)`.
//!
//! Label sets are **interned**: the first observation of a given
//! `(kind, name, labels)` combination allocates one registry entry and
//! returns a dense [`MetricId`]; every later lookup hashes the borrowed
//! name/labels in place (labels are canonicalized by sorting keys on a
//! stack-allocated index array) and finds the entry without allocating.
//! The hot path is the `*_at` family — observe through a cached
//! [`MetricId`] and the cost is one uncontended mutex lock plus a vector
//! index, with **no allocation and no hashing per observation**.
//!
//! Export is deterministic: entries are rendered as
//! `name{k=v,k2=v2}` with label keys sorted, and the whole registry is
//! emitted in sorted rendered-key order regardless of interning order.

use crate::recorder::{is_enabled, recorder, Histogram};
use crate::sketch::LatencySketch;
use std::collections::HashMap;

/// Handle to an interned labeled metric: a dense index into the
/// registry. Cheap to copy and cache. Invalidated by
/// [`crate::reset`] — observations through a stale id are dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricId(pub(crate) u32);

/// What a labeled registry entry holds.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum MetricData {
    /// Monotonic counter.
    Counter(u64),
    /// Last-set gauge.
    Gauge(i64),
    /// Power-of-two histogram.
    Histogram(Box<Histogram>),
    /// Bounded-error percentile sketch (boxed: a sketch's bucket array
    /// is ~15 KiB, far larger than the other variants).
    Sketch(Box<LatencySketch>),
}

impl MetricData {
    const KIND_COUNTER: u8 = 0;
    const KIND_GAUGE: u8 = 1;
    const KIND_HISTOGRAM: u8 = 2;
    const KIND_SKETCH: u8 = 3;

    fn kind(&self) -> u8 {
        match self {
            MetricData::Counter(_) => Self::KIND_COUNTER,
            MetricData::Gauge(_) => Self::KIND_GAUGE,
            MetricData::Histogram(_) => Self::KIND_HISTOGRAM,
            MetricData::Sketch(_) => Self::KIND_SKETCH,
        }
    }
}

/// One interned labeled metric.
#[derive(Clone, Debug)]
pub(crate) struct LabeledEntry {
    pub(crate) name: String,
    /// Label pairs, sorted by key.
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) data: MetricData,
}

/// The labeled-metric intern table + storage. Lives inside the
/// recorder's `Inner`, guarded by the same mutex.
#[derive(Default)]
pub(crate) struct LabeledRegistry {
    /// FNV hash of `(kind, name, sorted labels)` → candidate ids.
    by_hash: HashMap<u64, Vec<u32>>,
    pub(crate) entries: Vec<LabeledEntry>,
}

/// FNV-1a over the canonical identity of a metric. `order` maps
/// position → index into `labels` in sorted-key order.
fn identity_hash(kind: u8, name: &str, labels: &[(&str, &str)], order: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
    };
    mix(&[kind]);
    mix(name.as_bytes());
    mix(&[0x1f]);
    for &i in order {
        let (k, v) = labels[i];
        mix(k.as_bytes());
        mix(&[0x1e]);
        mix(v.as_bytes());
        mix(&[0x1f]);
    }
    h
}

/// Sort `labels` indices by key into `buf` (stack space for the common
/// case); falls back to a heap vector above 8 labels.
fn sorted_order(labels: &[(&str, &str)], buf: &mut [usize; 8]) -> Vec<usize> {
    if labels.len() <= 8 {
        let idx = &mut buf[..labels.len()];
        for (i, slot) in idx.iter_mut().enumerate() {
            *slot = i;
        }
        // Insertion sort: label sets are tiny and mostly pre-sorted.
        for i in 1..idx.len() {
            let mut j = i;
            while j > 0 && labels[idx[j - 1]].0 > labels[idx[j]].0 {
                idx.swap(j - 1, j);
                j -= 1;
            }
        }
        idx.to_vec()
    } else {
        let mut idx: Vec<usize> = (0..labels.len()).collect();
        idx.sort_by(|&a, &b| labels[a].0.cmp(labels[b].0));
        idx
    }
}

impl LabeledRegistry {
    /// Intern `(kind, name, labels)`, creating the entry with `init()`
    /// data on first sight. Allocation-free on the hit path (for up to
    /// 8 labels) — `init` runs only when the entry is minted.
    fn intern(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        kind: u8,
        init: impl FnOnce() -> MetricData,
    ) -> u32 {
        let mut buf = [0usize; 8];
        let order = sorted_order(labels, &mut buf);
        let h = identity_hash(kind, name, labels, &order);
        if let Some(ids) = self.by_hash.get(&h) {
            'cand: for &id in ids {
                let e = &self.entries[id as usize];
                if e.data.kind() != kind || e.name != name || e.labels.len() != labels.len() {
                    continue;
                }
                for (stored, &i) in e.labels.iter().zip(order.iter()) {
                    if stored.0 != labels[i].0 || stored.1 != labels[i].1 {
                        continue 'cand;
                    }
                }
                return id;
            }
        }
        let id = self.entries.len() as u32;
        self.entries.push(LabeledEntry {
            name: name.to_string(),
            labels: order
                .iter()
                .map(|&i| (labels[i].0.to_string(), labels[i].1.to_string()))
                .collect(),
            data: init(),
        });
        self.by_hash.entry(h).or_default().push(id);
        id
    }
}

/// Render the canonical export key: `name{k=v,k2=v2}` (label keys
/// sorted; `name` alone when the label set is empty). When
/// `skip_label` is given, that label is omitted from the rendering
/// (used by the per-tenant breakdown, which groups by the skipped
/// label instead).
pub fn render_key(name: &str, labels: &[(String, String)], skip_label: Option<&str>) -> String {
    let kept: Vec<&(String, String)> = labels
        .iter()
        .filter(|(k, _)| Some(k.as_str()) != skip_label)
        .collect();
    if kept.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * kept.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in kept.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out.push('}');
    out
}

// ---------------------------------------------------------------------
// Interning entry points (setup path: one allocation on first sight,
// hash lookup afterwards).
// ---------------------------------------------------------------------

/// Intern a labeled counter and return its [`MetricId`].
pub fn counter_id(name: &str, labels: &[(&str, &str)]) -> MetricId {
    let mut inner = recorder().lock().unwrap();
    MetricId(
        inner
            .labeled
            .intern(name, labels, MetricData::KIND_COUNTER, || {
                MetricData::Counter(0)
            }),
    )
}

/// Intern a labeled gauge and return its [`MetricId`].
pub fn gauge_id(name: &str, labels: &[(&str, &str)]) -> MetricId {
    let mut inner = recorder().lock().unwrap();
    MetricId(
        inner
            .labeled
            .intern(name, labels, MetricData::KIND_GAUGE, || {
                MetricData::Gauge(0)
            }),
    )
}

/// Intern a labeled power-of-two histogram and return its [`MetricId`].
pub fn histogram_id(name: &str, labels: &[(&str, &str)]) -> MetricId {
    let mut inner = recorder().lock().unwrap();
    MetricId(
        inner
            .labeled
            .intern(name, labels, MetricData::KIND_HISTOGRAM, || {
                MetricData::Histogram(Box::default())
            }),
    )
}

/// Intern a labeled latency sketch and return its [`MetricId`].
pub fn sketch_id(name: &str, labels: &[(&str, &str)]) -> MetricId {
    let mut inner = recorder().lock().unwrap();
    MetricId(
        inner
            .labeled
            .intern(name, labels, MetricData::KIND_SKETCH, || {
                MetricData::Sketch(Box::new(LatencySketch::new()))
            }),
    )
}

// ---------------------------------------------------------------------
// Hot-path observation through a cached id: one lock + vector index,
// no allocation, no hashing.
// ---------------------------------------------------------------------

/// Add `delta` to the counter behind `id`. Dropped when recording is
/// disabled or `id` is stale (from before a [`crate::reset`]).
#[inline]
pub fn counter_add_at(id: MetricId, delta: u64) {
    if !is_enabled() {
        return;
    }
    let mut inner = recorder().lock().unwrap();
    if let Some(LabeledEntry {
        data: MetricData::Counter(c),
        ..
    }) = inner.labeled.entries.get_mut(id.0 as usize)
    {
        *c += delta;
    }
}

/// Set the gauge behind `id`.
#[inline]
pub fn gauge_set_at(id: MetricId, value: i64) {
    if !is_enabled() {
        return;
    }
    let mut inner = recorder().lock().unwrap();
    if let Some(LabeledEntry {
        data: MetricData::Gauge(g),
        ..
    }) = inner.labeled.entries.get_mut(id.0 as usize)
    {
        *g = value;
    }
}

/// Record `value` into the histogram behind `id`.
#[inline]
pub fn histogram_observe_at(id: MetricId, value: u64) {
    if !is_enabled() {
        return;
    }
    let mut inner = recorder().lock().unwrap();
    if let Some(LabeledEntry {
        data: MetricData::Histogram(h),
        ..
    }) = inner.labeled.entries.get_mut(id.0 as usize)
    {
        h.observe(value);
    }
}

/// Record `value` into the latency sketch behind `id`.
#[inline]
pub fn sketch_observe_at(id: MetricId, value: u64) {
    if !is_enabled() {
        return;
    }
    let mut inner = recorder().lock().unwrap();
    if let Some(LabeledEntry {
        data: MetricData::Sketch(s),
        ..
    }) = inner.labeled.entries.get_mut(id.0 as usize)
    {
        s.observe(value);
    }
}

// ---------------------------------------------------------------------
// One-shot convenience: intern + observe. Allocation-free after the
// first call for a given label set; prefer the `*_at` family inside
// per-event loops.
// ---------------------------------------------------------------------

/// Add `delta` to the labeled counter `(name, labels)`.
pub fn counter_add_labeled(name: &str, labels: &[(&str, &str)], delta: u64) {
    if !is_enabled() {
        return;
    }
    let mut inner = recorder().lock().unwrap();
    let id = inner
        .labeled
        .intern(name, labels, MetricData::KIND_COUNTER, || {
            MetricData::Counter(0)
        });
    if let MetricData::Counter(c) = &mut inner.labeled.entries[id as usize].data {
        *c += delta;
    }
}

/// Set the labeled gauge `(name, labels)`.
pub fn gauge_set_labeled(name: &str, labels: &[(&str, &str)], value: i64) {
    if !is_enabled() {
        return;
    }
    let mut inner = recorder().lock().unwrap();
    let id = inner
        .labeled
        .intern(name, labels, MetricData::KIND_GAUGE, || {
            MetricData::Gauge(0)
        });
    if let MetricData::Gauge(g) = &mut inner.labeled.entries[id as usize].data {
        *g = value;
    }
}

/// Record `value` into the labeled histogram `(name, labels)`.
pub fn histogram_observe_labeled(name: &str, labels: &[(&str, &str)], value: u64) {
    if !is_enabled() {
        return;
    }
    let mut inner = recorder().lock().unwrap();
    let id = inner
        .labeled
        .intern(name, labels, MetricData::KIND_HISTOGRAM, || {
            MetricData::Histogram(Box::default())
        });
    if let MetricData::Histogram(h) = &mut inner.labeled.entries[id as usize].data {
        h.observe(value);
    }
}

/// Record `value` into the labeled latency sketch `(name, labels)`.
pub fn sketch_observe_labeled(name: &str, labels: &[(&str, &str)], value: u64) {
    if !is_enabled() {
        return;
    }
    let mut inner = recorder().lock().unwrap();
    let id = inner
        .labeled
        .intern(name, labels, MetricData::KIND_SKETCH, || {
            MetricData::Sketch(Box::new(LatencySketch::new()))
        });
    if let MetricData::Sketch(s) = &mut inner.labeled.entries[id as usize].data {
        s.observe(value);
    }
}

/// Record `value` into the unlabeled latency sketch `name` (an empty
/// label set).
pub fn sketch_observe(name: &str, value: u64) {
    sketch_observe_labeled(name, &[], value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{disable, enable, reset, test_guard};

    #[test]
    fn interning_is_stable_and_order_insensitive() {
        let _g = test_guard();
        reset();
        enable();
        let a = counter_id("swap.bytes", &[("tenant", "a"), ("device", "0")]);
        let b = counter_id("swap.bytes", &[("device", "0"), ("tenant", "a")]);
        assert_eq!(a, b, "label order must not mint a new metric");
        let c = counter_id("swap.bytes", &[("device", "1"), ("tenant", "a")]);
        assert_ne!(a, c);
        counter_add_at(a, 5);
        counter_add_at(b, 7);
        counter_add_at(c, 1);
        let inner = recorder().lock().unwrap();
        assert_eq!(inner.labeled.entries.len(), 2);
        assert!(matches!(
            inner.labeled.entries[a.0 as usize].data,
            MetricData::Counter(12)
        ));
        drop(inner);
        disable();
        reset();
    }

    #[test]
    fn kinds_with_same_name_are_distinct() {
        let _g = test_guard();
        reset();
        enable();
        let c = counter_id("m", &[("op", "x")]);
        let h = histogram_id("m", &[("op", "x")]);
        let s = sketch_id("m", &[("op", "x")]);
        let g = gauge_id("m", &[("op", "x")]);
        let ids = [c.0, h.0, s.0, g.0];
        let unique: std::collections::HashSet<u32> = ids.iter().copied().collect();
        assert_eq!(unique.len(), 4, "one entry per kind: {ids:?}");
        disable();
        reset();
    }

    #[test]
    fn stale_ids_after_reset_are_dropped() {
        let _g = test_guard();
        reset();
        enable();
        let id = counter_id("stale", &[]);
        counter_add_at(id, 1);
        reset();
        enable();
        counter_add_at(id, 1); // dropped: registry is empty
        let inner = recorder().lock().unwrap();
        assert!(inner.labeled.entries.is_empty());
        drop(inner);
        disable();
        reset();
    }

    #[test]
    fn render_key_formats_and_skips() {
        let labels = vec![
            ("device".to_string(), "0".to_string()),
            ("tenant".to_string(), "a".to_string()),
        ];
        assert_eq!(render_key("m", &labels, None), "m{device=0,tenant=a}");
        assert_eq!(render_key("m", &labels, Some("tenant")), "m{device=0}");
        assert_eq!(render_key("m", &[], None), "m");
    }

    #[test]
    fn disabled_observations_are_noops() {
        let _g = test_guard();
        reset();
        disable();
        counter_add_labeled("c", &[("a", "b")], 1);
        sketch_observe("s", 9);
        let id = counter_id("c2", &[]); // interning works while disabled
        counter_add_at(id, 3);
        let inner = recorder().lock().unwrap();
        // Only the explicitly interned ids exist, with zero data.
        assert_eq!(inner.labeled.entries.len(), 1);
        assert!(matches!(
            inner.labeled.entries[0].data,
            MetricData::Counter(0)
        ));
        drop(inner);
        reset();
    }
}
