//! Exporters: Chrome trace-event JSON and the phase-breakdown summary.
//!
//! Both exports are pure functions of the recorder state, which is
//! itself a deterministic function of the simulation — so identical runs
//! yield byte-identical output. All JSON is hand-emitted (sorted keys,
//! fixed formatting); no serialization library, no float formatting
//! surprises (timestamps stay integral nanoseconds split manually into
//! microsecond ticks). Labeled metrics are exported in sorted
//! rendered-key order (`name{k=v}`), independent of interning order, so
//! summaries diff byte-for-byte across identical runs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::Event;
use crate::labels::{render_key, MetricData};
use crate::recorder::{recorder, DurationStat, Histogram};
use crate::sketch::LatencySketch;

/// Canonical order for the paper's stacked-bar phase charts (Fig 9/10):
/// the snapshot path, then the restart/relocation operations.
const PHASE_ORDER: [&str; 9] = [
    "snapify.pause",
    "snapify.capture",
    "snapify.transfer",
    "snapify.resume",
    "snapify.wait",
    "snapify.restore",
    "snapify.swapout",
    "snapify.swapin",
    "snapify.migrate",
];

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Nanoseconds rendered as (possibly fractional) microseconds, the unit
/// the Chrome trace-event format expects for `ts`.
fn micros(ns: u64, out: &mut String) {
    let frac = ns % 1000;
    if frac == 0 {
        let _ = write!(out, "{}", ns / 1000);
    } else {
        let _ = write!(out, "{}.{:03}", ns / 1000, frac);
    }
}

/// Export the recorded events as Chrome trace-event JSON (the
/// `traceEvents` object form), loadable in Perfetto or
/// `chrome://tracing`. Span begin/end become `B`/`E` events; instants
/// become `i` events scoped to their thread. Run metadata
/// ([`crate::set_meta`] — e.g. the chaos seed and fault schedule) is
/// stamped into the `otherData` block so exported traces are
/// self-identifying. Only the flight-recorder tail is exported (the
/// ring is bounded); iteration happens under the recorder lock without
/// cloning the buffer.
pub fn chrome_trace() -> String {
    let inner = recorder().lock().unwrap();
    let mut out = String::with_capacity(64 + inner.flight.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in inner.flight.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{");
        match ev {
            Event::SpanBegin {
                id,
                parent,
                tid,
                t_ns,
                name,
                fields,
            } => {
                out.push_str("\"name\":\"");
                json_escape(name, &mut out);
                let _ = write!(out, "\",\"ph\":\"B\",\"pid\":1,\"tid\":{tid},\"ts\":");
                micros(*t_ns, &mut out);
                let _ = write!(out, ",\"args\":{{\"span\":{id},\"parent\":{parent}");
                for (k, v) in fields {
                    out.push_str(",\"");
                    json_escape(k, &mut out);
                    out.push_str("\":\"");
                    json_escape(v, &mut out);
                    out.push('"');
                }
                out.push_str("}}");
            }
            Event::SpanEnd {
                tid, t_ns, name, ..
            } => {
                out.push_str("\"name\":\"");
                json_escape(name, &mut out);
                let _ = write!(out, "\",\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":");
                micros(*t_ns, &mut out);
                out.push('}');
            }
            Event::Instant { tid, t_ns, label } => {
                out.push_str("\"name\":\"");
                json_escape(label, &mut out);
                let _ = write!(
                    out,
                    "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"ts\":"
                );
                micros(*t_ns, &mut out);
                out.push('}');
            }
        }
    }
    out.push_str("\n],\"otherData\":{");
    for (i, (k, v)) in inner.meta.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape(k, &mut out);
        out.push_str("\":\"");
        json_escape(v, &mut out);
        out.push('"');
    }
    out.push_str("},\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// The value of one labeled metric in a [`Summary`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Last-set gauge.
    Gauge(i64),
    /// Power-of-two histogram.
    Histogram(Box<Histogram>),
    /// Bounded-error percentile sketch (boxed: a sketch's bucket array
    /// is ~15 KiB, far larger than the other variants).
    Sketch(Box<LatencySketch>),
}

impl MetricValue {
    fn from_data(d: &MetricData) -> MetricValue {
        match d {
            MetricData::Counter(c) => MetricValue::Counter(*c),
            MetricData::Gauge(g) => MetricValue::Gauge(*g),
            MetricData::Histogram(h) => MetricValue::Histogram(h.clone()),
            MetricData::Sketch(s) => MetricValue::Sketch(s.clone()),
        }
    }
}

/// One labeled metric in a [`Summary`]: name, sorted label pairs, and
/// the captured value.
#[derive(Clone, Debug, PartialEq)]
pub struct LabeledMetric {
    /// Metric name.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// Captured value.
    pub value: MetricValue,
}

impl LabeledMetric {
    /// The canonical export key, `name{k=v,k2=v2}`.
    pub fn key(&self) -> String {
        render_key(&self.name, &self.labels, None)
    }

    /// The label's value, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// An aggregated view of the recording: per-phase durations plus the
/// metrics registry. Obtain via [`Summary::capture`].
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Closed-span duration statistics per span name.
    pub durations: BTreeMap<String, DurationStat>,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Gauges (last set value).
    pub gauges: BTreeMap<String, i64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Labeled (dimensional) metrics, sorted by rendered key.
    pub labeled: Vec<LabeledMetric>,
    /// Run metadata (chaos seed, fault schedule, …).
    pub meta: BTreeMap<String, String>,
}

impl Summary {
    /// Snapshot the current recorder state. Labeled metrics are sorted
    /// by rendered key so the capture (and everything exported from it)
    /// is independent of interning order.
    pub fn capture() -> Summary {
        let inner = recorder().lock().unwrap();
        let mut labeled: Vec<LabeledMetric> = inner
            .labeled
            .entries
            .iter()
            .map(|e| LabeledMetric {
                name: e.name.clone(),
                labels: e.labels.clone(),
                value: MetricValue::from_data(&e.data),
            })
            .collect();
        labeled.sort_by(|a, b| {
            a.key()
                .cmp(&b.key())
                .then_with(|| kind_rank(a).cmp(&kind_rank(b)))
        });
        Summary {
            durations: inner.durations.clone(),
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
            labeled,
            meta: inner.meta.clone(),
        }
    }

    /// The paper-figure phase rows (canonical order, only phases that
    /// actually occurred): `(phase, stat)`.
    pub fn phase_breakdown(&self) -> Vec<(&str, DurationStat)> {
        PHASE_ORDER
            .iter()
            .filter_map(|p| self.durations.get(*p).map(|s| (*p, *s)))
            .collect()
    }

    /// Labeled metrics grouped by their `tenant` label: for each tenant
    /// (sorted), the metrics carrying that tenant label, keyed by their
    /// rendered key **without** the tenant pair (sorted). Metrics with
    /// no `tenant` label are absent.
    pub fn tenant_breakdown(&self) -> BTreeMap<String, Vec<(String, &LabeledMetric)>> {
        let mut out: BTreeMap<String, Vec<(String, &LabeledMetric)>> = BTreeMap::new();
        for m in &self.labeled {
            if let Some(tenant) = m.label("tenant") {
                out.entry(tenant.to_string())
                    .or_default()
                    .push((render_key(&m.name, &m.labels, Some("tenant")), m));
            }
        }
        // `labeled` is sorted by full key; re-sort each group by the
        // tenant-stripped key so groups are internally stable too.
        for group in out.values_mut() {
            group.sort_by(|a, b| a.0.cmp(&b.0));
        }
        out
    }

    /// Convenience: the latency sketch for `(name, tenant)`, if
    /// recorded. Matches any entry with that name whose `tenant` label
    /// equals `tenant`.
    pub fn tenant_sketch(&self, name: &str, tenant: &str) -> Option<&LatencySketch> {
        self.labeled.iter().find_map(|m| match &m.value {
            MetricValue::Sketch(s) if m.name == name && m.label("tenant") == Some(tenant) => {
                Some(s.as_ref())
            }
            _ => None,
        })
    }

    /// The merge of every `name` sketch whose labels contain all of
    /// `labels` as a subset — e.g. the one `("start", "cold")` pair
    /// rolls every tenant's cold-start sketch into a single
    /// distribution. `None` if nothing matched; an empty `labels`
    /// merges every sketch with that name.
    pub fn sketch_where(&self, name: &str, labels: &[(&str, &str)]) -> Option<LatencySketch> {
        let mut merged: Option<LatencySketch> = None;
        for m in &self.labeled {
            let MetricValue::Sketch(s) = &m.value else {
                continue;
            };
            if m.name != name || !labels.iter().all(|(k, v)| m.label(k) == Some(*v)) {
                continue;
            }
            match &mut merged {
                Some(acc) => acc.merge(s),
                None => merged = Some(s.as_ref().clone()),
            }
        }
        merged
    }
}

fn kind_rank(m: &LabeledMetric) -> u8 {
    match m.value {
        MetricValue::Counter(_) => 0,
        MetricValue::Gauge(_) => 1,
        MetricValue::Histogram(_) => 2,
        MetricValue::Sketch(_) => 3,
    }
}

fn ms(ns: u64) -> String {
    format!("{}.{:06}", ns / 1_000_000, ns % 1_000_000)
}

fn write_histogram_json(h: &Histogram, out: &mut String) {
    let _ = write!(
        out,
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
        h.count, h.sum, h.min, h.max
    );
    // Emit only non-empty buckets as [index, count] pairs to stay
    // compact while remaining a fixed function of the data.
    let mut first = true;
    for (idx, c) in h.buckets.iter().enumerate() {
        if *c > 0 {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "[{idx},{c}]");
        }
    }
    out.push_str("]}");
}

fn write_metric_value_json(v: &MetricValue, out: &mut String) {
    match v {
        MetricValue::Counter(c) => {
            let _ = write!(out, "{{\"type\": \"counter\", \"value\": {c}}}");
        }
        MetricValue::Gauge(g) => {
            let _ = write!(out, "{{\"type\": \"gauge\", \"value\": {g}}}");
        }
        MetricValue::Histogram(h) => {
            out.push_str("{\"type\": \"histogram\", \"value\": ");
            write_histogram_json(h, out);
            out.push('}');
        }
        MetricValue::Sketch(s) => {
            let _ = write!(
                out,
                "{{\"type\": \"sketch\", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p99\": {}, \"p999\": {}}}",
                s.count(),
                s.sum(),
                s.min(),
                s.max(),
                s.p50(),
                s.p99(),
                s.p999()
            );
        }
    }
}

/// Export the summary as deterministic JSON: phase breakdown, all span
/// durations, counters, gauges, histograms, labeled metrics, the
/// per-tenant breakdown, and run metadata — every map in sorted key
/// order.
pub fn summary_json() -> String {
    let s = Summary::capture();
    let mut out = String::new();
    out.push_str("{\n  \"phase_breakdown_ns\": {");
    let phases = s.phase_breakdown();
    for (i, (name, st)) in phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    \"{name}\": {{\"count\": {}, \"total\": {}, \"min\": {}, \"max\": {}}}",
            st.count, st.total_ns, st.min_ns, st.max_ns
        );
    }
    out.push_str(if phases.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });
    out.push_str("  \"durations_ns\": {");
    for (i, (name, st)) in s.durations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        json_escape(name, &mut out);
        let _ = write!(
            out,
            "\": {{\"count\": {}, \"total\": {}, \"min\": {}, \"max\": {}}}",
            st.count, st.total_ns, st.min_ns, st.max_ns
        );
    }
    out.push_str(if s.durations.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });
    out.push_str("  \"counters\": {");
    for (i, (name, v)) in s.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        json_escape(name, &mut out);
        let _ = write!(out, "\": {v}");
    }
    out.push_str(if s.counters.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });
    out.push_str("  \"gauges\": {");
    for (i, (name, v)) in s.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        json_escape(name, &mut out);
        let _ = write!(out, "\": {v}");
    }
    out.push_str(if s.gauges.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });
    out.push_str("  \"histograms\": {");
    for (i, (name, h)) in s.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        json_escape(name, &mut out);
        out.push_str("\": ");
        write_histogram_json(h, &mut out);
    }
    out.push_str(if s.histograms.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });
    out.push_str("  \"labeled\": {");
    for (i, m) in s.labeled.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        json_escape(&m.key(), &mut out);
        out.push_str("\": ");
        write_metric_value_json(&m.value, &mut out);
    }
    out.push_str(if s.labeled.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });
    out.push_str("  \"tenant_breakdown\": {");
    let breakdown = s.tenant_breakdown();
    for (i, (tenant, metrics)) in breakdown.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        json_escape(tenant, &mut out);
        out.push_str("\": {");
        for (j, (key, m)) in metrics.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("\n      \"");
            json_escape(key, &mut out);
            out.push_str("\": ");
            write_metric_value_json(&m.value, &mut out);
        }
        out.push_str("\n    }");
    }
    out.push_str(if breakdown.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });
    out.push_str("  \"meta\": {");
    for (i, (k, v)) in s.meta.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        json_escape(k, &mut out);
        out.push_str("\": \"");
        json_escape(v, &mut out);
        out.push('"');
    }
    out.push_str(if s.meta.is_empty() { "}\n" } else { "\n  }\n" });
    out.push_str("}\n");
    out
}

/// Export the summary as a plain-text report: the paper-style stacked
/// phase breakdown first, then every span name, then the metrics
/// registry (unlabeled, labeled, and the per-tenant rollup).
pub fn summary_text() -> String {
    let s = Summary::capture();
    let mut out = String::new();
    out.push_str("== snapify phase breakdown (virtual time, ms) ==\n");
    let phases = s.phase_breakdown();
    if phases.is_empty() {
        out.push_str("  (no phases recorded)\n");
    }
    for (name, st) in &phases {
        let _ = writeln!(
            out,
            "  {name:<20} count {:>4}  total {:>14}  min {:>14}  max {:>14}",
            st.count,
            ms(st.total_ns),
            ms(st.min_ns),
            ms(st.max_ns)
        );
    }
    out.push_str("\n== span durations (virtual time, ms) ==\n");
    for (name, st) in &s.durations {
        let _ = writeln!(
            out,
            "  {name:<32} count {:>4}  total {:>14}  min {:>14}  max {:>14}",
            st.count,
            ms(st.total_ns),
            ms(st.min_ns),
            ms(st.max_ns)
        );
    }
    out.push_str("\n== counters ==\n");
    for (name, v) in &s.counters {
        let _ = writeln!(out, "  {name:<40} {v}");
    }
    out.push_str("\n== gauges ==\n");
    for (name, v) in &s.gauges {
        let _ = writeln!(out, "  {name:<40} {v}");
    }
    out.push_str("\n== histograms (power-of-two buckets) ==\n");
    for (name, h) in &s.histograms {
        let _ = writeln!(
            out,
            "  {name:<40} count {:>8}  sum {:>16}  min {:>12}  max {:>12}",
            h.count, h.sum, h.min, h.max
        );
        for (idx, c) in h.buckets.iter().enumerate() {
            if *c > 0 {
                let lo: u128 = if idx == 0 { 0 } else { 1u128 << (idx - 1) };
                let hi: u128 = if idx == 0 { 1 } else { 1u128 << idx };
                let _ = writeln!(out, "    [{lo:>16}, {hi:>16})  {c}");
            }
        }
    }
    if !s.labeled.is_empty() {
        out.push_str("\n== labeled metrics ==\n");
        for m in &s.labeled {
            match &m.value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "  {:<56} {c}", m.key());
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "  {:<56} {g}", m.key());
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "  {:<56} count {:>8}  sum {:>16}  min {:>12}  max {:>12}",
                        m.key(),
                        h.count,
                        h.sum,
                        h.min,
                        h.max
                    );
                }
                MetricValue::Sketch(sk) => {
                    let _ = writeln!(
                        out,
                        "  {:<56} count {:>8}  p50 {:>12}  p99 {:>12}  p999 {:>12}",
                        m.key(),
                        sk.count(),
                        sk.p50(),
                        sk.p99(),
                        sk.p999()
                    );
                }
            }
        }
    }
    let breakdown = s.tenant_breakdown();
    if !breakdown.is_empty() {
        out.push_str("\n== tenant breakdown ==\n");
        for (tenant, metrics) in &breakdown {
            let _ = writeln!(out, "  tenant {tenant}:");
            for (key, m) in metrics {
                match &m.value {
                    MetricValue::Counter(c) => {
                        let _ = writeln!(out, "    {key:<52} {c}");
                    }
                    MetricValue::Gauge(g) => {
                        let _ = writeln!(out, "    {key:<52} {g}");
                    }
                    MetricValue::Histogram(h) => {
                        let _ =
                            writeln!(out, "    {key:<52} count {:>8}  sum {:>16}", h.count, h.sum);
                    }
                    MetricValue::Sketch(sk) => {
                        let _ = writeln!(
                            out,
                            "    {key:<52} p50 {:>12}  p99 {:>12}  p999 {:>12}",
                            sk.p50(),
                            sk.p99(),
                            sk.p999()
                        );
                    }
                }
            }
        }
    }
    if !s.meta.is_empty() {
        out.push_str("\n== run metadata ==\n");
        for (k, v) in &s.meta {
            let _ = writeln!(out, "  {k:<40} {v}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::labels::{counter_add_labeled, sketch_observe_labeled};
    use crate::recorder::{
        counter_add, disable, enable, histogram_observe, reset, set_meta, test_guard,
    };

    #[test]
    fn chrome_trace_is_valid_shape_and_deterministic() {
        let _g = test_guard();
        reset();
        enable();
        {
            let _a = crate::span!("snapify.pause", device = 0);
            let _b = crate::span!("drain");
        }
        crate::instant("checkpoint done");
        counter_add("scif.bytes_sent", 4096);
        set_meta("chaos.seed", "7");
        disable();
        let t1 = super::chrome_trace();
        let t2 = super::chrome_trace();
        assert_eq!(t1, t2);
        assert!(t1.starts_with("{\"traceEvents\":["));
        assert!(t1.contains("\"ph\":\"B\""));
        assert!(t1.contains("\"ph\":\"E\""));
        assert!(t1.contains("\"ph\":\"i\""));
        assert!(t1.contains("\"name\":\"snapify.pause\""));
        assert!(t1.contains("\"otherData\":{\"chaos.seed\":\"7\"}"));
        // Balanced B/E.
        assert_eq!(t1.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(t1.matches("\"ph\":\"E\"").count(), 2);
        reset();
    }

    #[test]
    fn summary_reports_phases_and_metrics() {
        let _g = test_guard();
        reset();
        enable();
        {
            let _a = crate::span!("snapify.pause");
        }
        {
            let _b = crate::span!("snapify.resume");
        }
        counter_add("io.nfs.rpc_ops", 7);
        histogram_observe("blcr.region_bytes", 4096);
        disable();
        let text = super::summary_text();
        assert!(text.contains("snapify.pause"));
        assert!(text.contains("io.nfs.rpc_ops"));
        let json = super::summary_json();
        assert!(json.contains("\"snapify.pause\""));
        assert!(json.contains("\"io.nfs.rpc_ops\": 7"));
        assert!(json.contains("\"blcr.region_bytes\""));
        // Phase order: pause before resume in the breakdown section.
        let pause = json.find("\"snapify.pause\"").unwrap();
        let resume = json.find("\"snapify.resume\"").unwrap();
        assert!(pause < resume);
        reset();
    }

    #[test]
    fn labeled_metrics_and_tenant_breakdown_export() {
        let _g = test_guard();
        reset();
        enable();
        // Intern deliberately out of sorted order.
        counter_add_labeled("swap.bytes", &[("tenant", "b"), ("op", "out")], 100);
        counter_add_labeled("swap.bytes", &[("tenant", "a"), ("op", "out")], 7);
        sketch_observe_labeled("swap.swapin_ns", &[("tenant", "a")], 1000);
        sketch_observe_labeled("swap.swapin_ns", &[("tenant", "a")], 2000);
        counter_add_labeled("node.bytes", &[("node", "mic0")], 9);
        disable();
        let json = super::summary_json();
        assert!(
            json.contains("\"swap.bytes{op=out,tenant=a}\": {\"type\": \"counter\", \"value\": 7}")
        );
        assert!(json.contains("\"tenant_breakdown\""));
        // Tenant groups strip the tenant label from inner keys.
        let a = json.find("\"a\": {").expect("tenant a group");
        let b = json.find("\"b\": {").expect("tenant b group");
        assert!(a < b, "tenants sorted");
        assert!(json.contains("\"swap.bytes{op=out}\""));
        assert!(json.contains("\"p99\": 2000"));
        // Unlabeled-by-tenant metric stays out of the breakdown.
        let breakdown_at = json.find("\"tenant_breakdown\"").unwrap();
        assert!(!json[breakdown_at..].contains("node.bytes"));
        let s = super::Summary::capture();
        let sk = s.tenant_sketch("swap.swapin_ns", "a").unwrap();
        assert_eq!(sk.count(), 2);
        assert!(s.tenant_sketch("swap.swapin_ns", "b").is_none());
        reset();
    }

    #[test]
    fn sketch_where_merges_by_label_subset() {
        let _g = test_guard();
        reset();
        enable();
        sketch_observe_labeled("ttfc", &[("tenant", "a"), ("start", "cold")], 4_000_000);
        sketch_observe_labeled("ttfc", &[("tenant", "b"), ("start", "cold")], 4_000_000);
        sketch_observe_labeled("ttfc", &[("tenant", "a"), ("start", "warm")], 1_000);
        sketch_observe_labeled("other", &[("start", "cold")], 77);
        disable();
        let s = super::Summary::capture();
        // One label pair rolls both cold tenants together...
        let cold = s.sketch_where("ttfc", &[("start", "cold")]).unwrap();
        assert_eq!(cold.count(), 2);
        assert!(cold.p50() >= 3_800_000, "p50={}", cold.p50());
        // ...two pairs narrow to one series, no labels merges them all.
        let a_cold = s
            .sketch_where("ttfc", &[("start", "cold"), ("tenant", "a")])
            .unwrap();
        assert_eq!(a_cold.count(), 1);
        assert_eq!(s.sketch_where("ttfc", &[]).unwrap().count(), 3);
        // Name mismatch and label-value mismatch both yield nothing.
        assert!(s.sketch_where("missing", &[]).is_none());
        assert!(s.sketch_where("ttfc", &[("start", "tepid")]).is_none());
        reset();
    }

    #[test]
    fn identical_runs_serialize_identically() {
        let _g = test_guard();
        let run = || {
            reset();
            enable();
            // Interning order differs from sorted order on purpose.
            counter_add_labeled("m", &[("tenant", "z")], 1);
            counter_add_labeled("m", &[("tenant", "a")], 2);
            counter_add("plain", 3);
            histogram_observe("h", 17);
            sketch_observe_labeled("lat", &[("tenant", "a"), ("op", "in")], 40);
            {
                let _s = crate::span!("snapify.pause");
            }
            set_meta("run", "x");
            disable();
            let out = (super::summary_json(), super::summary_text());
            reset();
            out
        };
        let (j1, t1) = run();
        let (j2, t2) = run();
        assert_eq!(j1, j2, "summary_json must be byte-stable across runs");
        assert_eq!(t1, t2, "summary_text must be byte-stable across runs");
    }

    #[test]
    fn micros_formatting() {
        let mut s = String::new();
        super::micros(1_234_567, &mut s);
        assert_eq!(s, "1234.567");
        s.clear();
        super::micros(5_000, &mut s);
        assert_eq!(s, "5");
    }
}
