//! Exporters: Chrome trace-event JSON and the phase-breakdown summary.
//!
//! Both exports are pure functions of the recorder state, which is
//! itself a deterministic function of the simulation — so identical runs
//! yield byte-identical output. All JSON is hand-emitted (sorted keys,
//! fixed formatting); no serialization library, no float formatting
//! surprises (timestamps stay integral nanoseconds split manually into
//! microsecond ticks).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::Event;
use crate::recorder::{recorder, DurationStat, Histogram};

/// Canonical order for the paper's stacked-bar phase charts (Fig 9/10):
/// the snapshot path, then the restart/relocation operations.
const PHASE_ORDER: [&str; 9] = [
    "snapify.pause",
    "snapify.capture",
    "snapify.transfer",
    "snapify.resume",
    "snapify.wait",
    "snapify.restore",
    "snapify.swapout",
    "snapify.swapin",
    "snapify.migrate",
];

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Nanoseconds rendered as (possibly fractional) microseconds, the unit
/// the Chrome trace-event format expects for `ts`.
fn micros(ns: u64, out: &mut String) {
    let frac = ns % 1000;
    if frac == 0 {
        let _ = write!(out, "{}", ns / 1000);
    } else {
        let _ = write!(out, "{}.{:03}", ns / 1000, frac);
    }
}

/// Export the recorded events as Chrome trace-event JSON (the
/// `traceEvents` object form), loadable in Perfetto or
/// `chrome://tracing`. Span begin/end become `B`/`E` events; instants
/// become `i` events scoped to their thread.
pub fn chrome_trace() -> String {
    let inner = recorder().lock().unwrap();
    let mut out = String::with_capacity(64 + inner.events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in inner.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{");
        match ev {
            Event::SpanBegin {
                id,
                parent,
                tid,
                t_ns,
                name,
                fields,
            } => {
                out.push_str("\"name\":\"");
                json_escape(name, &mut out);
                let _ = write!(out, "\",\"ph\":\"B\",\"pid\":1,\"tid\":{tid},\"ts\":");
                micros(*t_ns, &mut out);
                let _ = write!(out, ",\"args\":{{\"span\":{id},\"parent\":{parent}");
                for (k, v) in fields {
                    out.push_str(",\"");
                    json_escape(k, &mut out);
                    out.push_str("\":\"");
                    json_escape(v, &mut out);
                    out.push('"');
                }
                out.push_str("}}");
            }
            Event::SpanEnd {
                tid, t_ns, name, ..
            } => {
                out.push_str("\"name\":\"");
                json_escape(name, &mut out);
                let _ = write!(out, "\",\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":");
                micros(*t_ns, &mut out);
                out.push('}');
            }
            Event::Instant { tid, t_ns, label } => {
                out.push_str("\"name\":\"");
                json_escape(label, &mut out);
                let _ = write!(
                    out,
                    "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"ts\":"
                );
                micros(*t_ns, &mut out);
                out.push('}');
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// An aggregated view of the recording: per-phase durations plus the
/// metrics registry. Obtain via [`Summary::capture`].
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Closed-span duration statistics per span name.
    pub durations: BTreeMap<String, DurationStat>,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Gauges (last set value).
    pub gauges: BTreeMap<String, i64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

impl Summary {
    /// Snapshot the current recorder state.
    pub fn capture() -> Summary {
        let inner = recorder().lock().unwrap();
        Summary {
            durations: inner.durations.clone(),
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
        }
    }

    /// The paper-figure phase rows (canonical order, only phases that
    /// actually occurred): `(phase, stat)`.
    pub fn phase_breakdown(&self) -> Vec<(&str, DurationStat)> {
        PHASE_ORDER
            .iter()
            .filter_map(|p| self.durations.get(*p).map(|s| (*p, *s)))
            .collect()
    }
}

fn ms(ns: u64) -> String {
    format!("{}.{:06}", ns / 1_000_000, ns % 1_000_000)
}

/// Export the summary as deterministic JSON: phase breakdown, all span
/// durations, counters, gauges, and histograms, every map in sorted key
/// order.
pub fn summary_json() -> String {
    let s = Summary::capture();
    let mut out = String::new();
    out.push_str("{\n  \"phase_breakdown_ns\": {");
    let phases = s.phase_breakdown();
    for (i, (name, st)) in phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    \"{name}\": {{\"count\": {}, \"total\": {}, \"min\": {}, \"max\": {}}}",
            st.count, st.total_ns, st.min_ns, st.max_ns
        );
    }
    out.push_str(if phases.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });
    out.push_str("  \"durations_ns\": {");
    for (i, (name, st)) in s.durations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        json_escape(name, &mut out);
        let _ = write!(
            out,
            "\": {{\"count\": {}, \"total\": {}, \"min\": {}, \"max\": {}}}",
            st.count, st.total_ns, st.min_ns, st.max_ns
        );
    }
    out.push_str(if s.durations.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });
    out.push_str("  \"counters\": {");
    for (i, (name, v)) in s.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        json_escape(name, &mut out);
        let _ = write!(out, "\": {v}");
    }
    out.push_str(if s.counters.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });
    out.push_str("  \"gauges\": {");
    for (i, (name, v)) in s.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        json_escape(name, &mut out);
        let _ = write!(out, "\": {v}");
    }
    out.push_str(if s.gauges.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });
    out.push_str("  \"histograms\": {");
    for (i, (name, h)) in s.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        json_escape(name, &mut out);
        let _ = write!(
            out,
            "\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
            h.count, h.sum, h.min, h.max
        );
        // Emit only non-empty buckets as [index, count] pairs to stay
        // compact while remaining a fixed function of the data.
        let mut first = true;
        for (idx, c) in h.buckets.iter().enumerate() {
            if *c > 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{idx},{c}]");
            }
        }
        out.push_str("]}");
    }
    out.push_str(if s.histograms.is_empty() {
        "}\n"
    } else {
        "\n  }\n"
    });
    out.push_str("}\n");
    out
}

/// Export the summary as a plain-text report: the paper-style stacked
/// phase breakdown first, then every span name, then the metrics
/// registry.
pub fn summary_text() -> String {
    let s = Summary::capture();
    let mut out = String::new();
    out.push_str("== snapify phase breakdown (virtual time, ms) ==\n");
    let phases = s.phase_breakdown();
    if phases.is_empty() {
        out.push_str("  (no phases recorded)\n");
    }
    for (name, st) in &phases {
        let _ = writeln!(
            out,
            "  {name:<20} count {:>4}  total {:>14}  min {:>14}  max {:>14}",
            st.count,
            ms(st.total_ns),
            ms(st.min_ns),
            ms(st.max_ns)
        );
    }
    out.push_str("\n== span durations (virtual time, ms) ==\n");
    for (name, st) in &s.durations {
        let _ = writeln!(
            out,
            "  {name:<32} count {:>4}  total {:>14}  min {:>14}  max {:>14}",
            st.count,
            ms(st.total_ns),
            ms(st.min_ns),
            ms(st.max_ns)
        );
    }
    out.push_str("\n== counters ==\n");
    for (name, v) in &s.counters {
        let _ = writeln!(out, "  {name:<40} {v}");
    }
    out.push_str("\n== gauges ==\n");
    for (name, v) in &s.gauges {
        let _ = writeln!(out, "  {name:<40} {v}");
    }
    out.push_str("\n== histograms (power-of-two buckets) ==\n");
    for (name, h) in &s.histograms {
        let _ = writeln!(
            out,
            "  {name:<40} count {:>8}  sum {:>16}  min {:>12}  max {:>12}",
            h.count, h.sum, h.min, h.max
        );
        for (idx, c) in h.buckets.iter().enumerate() {
            if *c > 0 {
                let lo: u128 = if idx == 0 { 0 } else { 1u128 << (idx - 1) };
                let hi: u128 = if idx == 0 { 1 } else { 1u128 << idx };
                let _ = writeln!(out, "    [{lo:>16}, {hi:>16})  {c}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::recorder::{counter_add, disable, enable, histogram_observe, reset, test_guard};

    #[test]
    fn chrome_trace_is_valid_shape_and_deterministic() {
        let _g = test_guard();
        reset();
        enable();
        {
            let _a = crate::span!("snapify.pause", device = 0);
            let _b = crate::span!("drain");
        }
        crate::instant("checkpoint done");
        counter_add("scif.bytes_sent", 4096);
        disable();
        let t1 = super::chrome_trace();
        let t2 = super::chrome_trace();
        assert_eq!(t1, t2);
        assert!(t1.starts_with("{\"traceEvents\":["));
        assert!(t1.contains("\"ph\":\"B\""));
        assert!(t1.contains("\"ph\":\"E\""));
        assert!(t1.contains("\"ph\":\"i\""));
        assert!(t1.contains("\"name\":\"snapify.pause\""));
        // Balanced B/E.
        assert_eq!(t1.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(t1.matches("\"ph\":\"E\"").count(), 2);
        reset();
    }

    #[test]
    fn summary_reports_phases_and_metrics() {
        let _g = test_guard();
        reset();
        enable();
        {
            let _a = crate::span!("snapify.pause");
        }
        {
            let _b = crate::span!("snapify.resume");
        }
        counter_add("io.nfs.rpc_ops", 7);
        histogram_observe("blcr.region_bytes", 4096);
        disable();
        let text = super::summary_text();
        assert!(text.contains("snapify.pause"));
        assert!(text.contains("io.nfs.rpc_ops"));
        let json = super::summary_json();
        assert!(json.contains("\"snapify.pause\""));
        assert!(json.contains("\"io.nfs.rpc_ops\": 7"));
        assert!(json.contains("\"blcr.region_bytes\""));
        // Phase order: pause before resume in the breakdown section.
        let pause = json.find("\"snapify.pause\"").unwrap();
        let resume = json.find("\"snapify.resume\"").unwrap();
        assert!(pause < resume);
        reset();
    }

    #[test]
    fn micros_formatting() {
        let mut s = String::new();
        super::micros(1_234_567, &mut s);
        assert_eq!(s, "1234.567");
        s.clear();
        super::micros(5_000, &mut s);
        assert_eq!(s, "5");
    }
}
