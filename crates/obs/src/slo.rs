//! SLO specifications and the windowed monitor that evaluates them in
//! virtual time.
//!
//! An [`SloSpec`] names a latency metric, a quantile, a threshold, and
//! a window — e.g. `swapin.p99 < 40ms over 1s`. The [`SloMonitor`]
//! keeps one bounded-error [`LatencySketch`] per `(tenant, window)`;
//! when virtual time crosses a window boundary the closed window's
//! quantile is compared to the threshold and a typed [`SloBreach`]
//! (with an integer burn rate) is recorded for breaching tenants.
//! Everything runs on the virtual clock, so the same simulation always
//! yields the same breach list.

use std::collections::BTreeMap;

use crate::recorder::{counter_add, instant, is_enabled};
use crate::sketch::LatencySketch;

/// A parsed SLO: `<metric>.p<quantile> < <threshold> over <window>`.
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    /// Metric name the SLO constrains (e.g. `swapin`).
    pub metric: String,
    /// Quantile in `(0, 1]` (0.99 for `p99`).
    pub quantile: f64,
    /// Latency threshold, ns.
    pub threshold_ns: u64,
    /// Evaluation window, ns of virtual time.
    pub window_ns: u64,
}

/// Parse a duration like `40ms`, `1s`, `250us`, `900ns` into ns.
fn parse_duration_ns(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (num, mult) = if let Some(n) = s.strip_suffix("ns") {
        (n, 1u64)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1_000)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1_000_000)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000_000_000)
    } else {
        return Err(format!("duration `{s}` needs a ns/us/ms/s suffix"));
    };
    let v: u64 = num
        .trim()
        .parse()
        .map_err(|_| format!("bad duration value `{num}`"))?;
    Ok(v.saturating_mul(mult))
}

impl SloSpec {
    /// Build a spec directly.
    pub fn new(metric: &str, quantile: f64, threshold_ns: u64, window_ns: u64) -> SloSpec {
        SloSpec {
            metric: metric.to_string(),
            quantile,
            threshold_ns,
            window_ns: window_ns.max(1),
        }
    }

    /// Parse the canonical text form, e.g. `swapin.p99 < 40ms over 1s`.
    /// Supported quantile suffixes: `p50`, `p90`, `p95`, `p99`, `p999`.
    pub fn parse(s: &str) -> Result<SloSpec, String> {
        let (lhs, rest) = s
            .split_once('<')
            .ok_or_else(|| format!("SLO `{s}` must contain `<`"))?;
        let (threshold, window) = rest
            .split_once(" over ")
            .ok_or_else(|| format!("SLO `{s}` must contain ` over <window>`"))?;
        let lhs = lhs.trim();
        let (metric, q) = lhs
            .rsplit_once(".p")
            .ok_or_else(|| format!("SLO metric `{lhs}` must end in .p50/.p99/.p999"))?;
        let quantile = match q {
            "50" => 0.50,
            "90" => 0.90,
            "95" => 0.95,
            "99" => 0.99,
            "999" => 0.999,
            other => return Err(format!("unsupported quantile p{other}")),
        };
        Ok(SloSpec {
            metric: metric.trim().to_string(),
            quantile,
            threshold_ns: parse_duration_ns(threshold)?,
            window_ns: parse_duration_ns(window)?.max(1),
        })
    }

    /// Render back to the canonical text form.
    pub fn render(&self) -> String {
        let q = if (self.quantile - 0.999).abs() < 1e-9 {
            "999".to_string()
        } else {
            format!("{:.0}", self.quantile * 100.0)
        };
        format!(
            "{}.p{} < {}ns over {}ns",
            self.metric, q, self.threshold_ns, self.window_ns
        )
    }
}

/// One SLO violation: a closed window whose quantile exceeded the
/// threshold for one tenant.
#[derive(Clone, Debug, PartialEq)]
pub struct SloBreach {
    /// Tenant whose window breached.
    pub tenant: String,
    /// Metric name from the spec.
    pub metric: String,
    /// Quantile from the spec.
    pub quantile: f64,
    /// Window start, virtual ns.
    pub window_start_ns: u64,
    /// Window end (exclusive), virtual ns.
    pub window_end_ns: u64,
    /// The quantile observed over the window, ns.
    pub observed_ns: u64,
    /// The spec threshold, ns.
    pub threshold_ns: u64,
    /// `observed / threshold` in thousandths (1000 = exactly at the
    /// threshold; 2500 = 2.5× over). Integer so exports and assertions
    /// stay deterministic.
    pub burn_rate_milli: u64,
    /// Observations in the window.
    pub samples: u64,
}

impl SloBreach {
    /// One-line human-readable form (used in chaos failure reports).
    pub fn render(&self) -> String {
        format!(
            "tenant={} {} observed={}ns threshold={}ns burn={}.{:03}x window=[{}ns,{}ns) samples={}",
            self.tenant,
            self.metric,
            self.observed_ns,
            self.threshold_ns,
            self.burn_rate_milli / 1000,
            self.burn_rate_milli % 1000,
            self.window_start_ns,
            self.window_end_ns,
            self.samples,
        )
    }
}

/// A per-tenant window being accumulated.
struct TenantWindow {
    start_ns: u64,
    sketch: LatencySketch,
}

/// Evaluates one [`SloSpec`] over per-tenant windows of virtual time.
///
/// Feed it `(tenant, now, latency)` observations from the hot path;
/// call [`SloMonitor::flush`] at end of run to close the final partial
/// windows. Breach evaluation happens lazily when an observation (or
/// flush) crosses a window boundary, so the monitor costs one sketch
/// update per observation.
pub struct SloMonitor {
    spec: SloSpec,
    windows: BTreeMap<String, TenantWindow>,
    breaches: Vec<SloBreach>,
}

impl SloMonitor {
    /// New monitor for `spec`.
    pub fn new(spec: SloSpec) -> SloMonitor {
        SloMonitor {
            spec,
            windows: BTreeMap::new(),
            breaches: Vec::new(),
        }
    }

    /// The spec under evaluation.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    fn window_start(&self, now_ns: u64) -> u64 {
        now_ns - now_ns % self.spec.window_ns
    }

    fn evaluate(spec: &SloSpec, breaches: &mut Vec<SloBreach>, tenant: &str, w: &TenantWindow) {
        if w.sketch.count() == 0 {
            return;
        }
        let observed = w.sketch.quantile(spec.quantile);
        if observed <= spec.threshold_ns {
            return;
        }
        let burn = (observed as u128 * 1000 / spec.threshold_ns.max(1) as u128) as u64;
        let breach = SloBreach {
            tenant: tenant.to_string(),
            metric: spec.metric.clone(),
            quantile: spec.quantile,
            window_start_ns: w.start_ns,
            window_end_ns: w.start_ns + spec.window_ns,
            observed_ns: observed,
            threshold_ns: spec.threshold_ns,
            burn_rate_milli: burn,
            samples: w.sketch.count(),
        };
        if is_enabled() {
            counter_add("slo.breaches", 1);
            crate::labels::counter_add_labeled("slo.breaches", &[("tenant", tenant)], 1);
            instant(&format!("slo.breach {}", breach.render()));
        }
        breaches.push(breach);
    }

    /// Record one latency observation for `tenant` at virtual time
    /// `now_ns`. Closes (and evaluates) the tenant's previous window if
    /// `now_ns` has moved past it.
    pub fn observe(&mut self, tenant: &str, now_ns: u64, latency_ns: u64) {
        let start = self.window_start(now_ns);
        let spec = &self.spec;
        if let Some(w) = self.windows.get_mut(tenant) {
            if start > w.start_ns {
                Self::evaluate(spec, &mut self.breaches, tenant, w);
                w.start_ns = start;
                w.sketch.clear();
            }
            w.sketch.observe(latency_ns);
        } else {
            let mut sketch = LatencySketch::new();
            sketch.observe(latency_ns);
            self.windows.insert(
                tenant.to_string(),
                TenantWindow {
                    start_ns: start,
                    sketch,
                },
            );
        }
    }

    /// Close and evaluate every open window (end of run). The monitor
    /// can keep observing afterwards; subsequent observations open
    /// fresh windows.
    pub fn flush(&mut self) {
        let spec = self.spec.clone();
        for (tenant, w) in self.windows.iter_mut() {
            Self::evaluate(&spec, &mut self.breaches, tenant, w);
            w.sketch.clear();
        }
    }

    /// All breaches recorded so far, in evaluation order.
    pub fn breaches(&self) -> &[SloBreach] {
        &self.breaches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_and_errors() {
        let s = SloSpec::parse("swapin.p99 < 40ms over 1s").unwrap();
        assert_eq!(s.metric, "swapin");
        assert_eq!(s.quantile, 0.99);
        assert_eq!(s.threshold_ns, 40_000_000);
        assert_eq!(s.window_ns, 1_000_000_000);
        let s = SloSpec::parse("a.b.p999 < 250us over 10ms").unwrap();
        assert_eq!(s.metric, "a.b");
        assert_eq!(s.quantile, 0.999);
        assert_eq!(s.threshold_ns, 250_000);
        assert!(SloSpec::parse("no-comparison").is_err());
        assert!(SloSpec::parse("m.p42 < 1ms over 1s").is_err());
        assert!(SloSpec::parse("m.p99 < 1parsec over 1s").is_err());
    }

    #[test]
    fn breach_fires_only_when_quantile_exceeds_threshold() {
        let mut m = SloMonitor::new(SloSpec::new("swapin", 0.99, 1000, 1_000_000));
        // Window 0: all observations under threshold.
        for i in 0..100 {
            m.observe("a", i * 100, 500);
        }
        // Window 1: tail over threshold.
        for i in 0..100 {
            let lat = if i >= 90 { 5000 } else { 500 };
            m.observe("a", 1_000_000 + i * 100, lat);
        }
        m.flush();
        assert_eq!(m.breaches().len(), 1);
        let b = &m.breaches()[0];
        assert_eq!(b.tenant, "a");
        assert_eq!(b.window_start_ns, 1_000_000);
        assert!(b.observed_ns > 1000);
        assert!(b.burn_rate_milli > 1000, "burn {}", b.burn_rate_milli);
        assert_eq!(b.samples, 100);
    }

    #[test]
    fn tenants_are_windowed_independently() {
        let mut m = SloMonitor::new(SloSpec::new("swapin", 0.50, 1000, 1_000_000));
        m.observe("fast", 10, 100);
        m.observe("slow", 10, 9000);
        m.flush();
        let tenants: Vec<&str> = m.breaches().iter().map(|b| b.tenant.as_str()).collect();
        assert_eq!(tenants, vec!["slow"]);
    }

    #[test]
    fn flush_is_idempotent_per_window() {
        let mut m = SloMonitor::new(SloSpec::new("m", 0.50, 10, 1000));
        m.observe("t", 5, 100);
        m.flush();
        m.flush(); // window already cleared: no double-count
        assert_eq!(m.breaches().len(), 1);
    }
}
