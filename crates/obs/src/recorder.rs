//! The global recorder: span stacks, the event log, and the metrics
//! registry.
//!
//! One process-wide recorder is enough because the simulation kernel
//! runs exactly one simulated thread at a time: recording happens in
//! scheduler order, the internal `std::sync::Mutex` is uncontended, and
//! the resulting event log is deterministic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::event::{Event, SpanId};

/// A virtual-clock source: returns `(now_ns, tid)` for the calling
/// thread. Installed once per process by the simulation kernel.
pub type Clock = fn() -> (u64, u32);

fn default_clock() -> (u64, u32) {
    (0, 0)
}

static CLOCK: OnceLock<Clock> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Install the virtual-clock source. The first installation wins;
/// subsequent calls are ignored (the kernel re-installs the same
/// function for every `Kernel`).
pub fn install_clock(clock: Clock) {
    let _ = CLOCK.set(clock);
}

fn clock_now() -> (u64, u32) {
    CLOCK.get().copied().unwrap_or(default_clock as Clock)()
}

/// `true` if recording is enabled. This is the one relaxed atomic load
/// every recording entry point pays when observability is off.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn recording off. Already-recorded data is kept until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Discard all recorded events, open-span state, and metrics. Call
/// between independent recording sessions (e.g. two runs whose exports
/// are compared byte-for-byte).
pub fn reset() {
    let mut inner = recorder().lock().unwrap();
    *inner = Inner::default();
}

/// Statistics of one span name's closed instances.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct DurationStat {
    /// Closed spans with this name.
    pub count: u64,
    /// Sum of their durations, ns.
    pub total_ns: u64,
    /// Shortest instance, ns.
    pub min_ns: u64,
    /// Longest instance, ns.
    pub max_ns: u64,
}

impl DurationStat {
    fn observe(&mut self, d: u64) {
        if self.count == 0 {
            self.min_ns = d;
            self.max_ns = d;
        } else {
            self.min_ns = self.min_ns.min(d);
            self.max_ns = self.max_ns.max(d);
        }
        self.count += 1;
        self.total_ns += d;
    }
}

/// A fixed-bucket histogram: bucket `i` counts values `v` with
/// `floor(log2(v)) == i - 1` (bucket 0 counts `v == 0`), i.e.
/// power-of-two buckets up to `2^63`. The bucket layout never depends on
/// the data, which keeps merged and exported output deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket counts; index 0 is the zero bucket, index `i` covers
    /// `[2^(i-1), 2^i)`.
    pub buckets: [u64; 65],
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl Histogram {
    fn observe(&mut self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }
}

struct OpenSpan {
    id: SpanId,
    name: &'static str,
    t_begin_ns: u64,
}

#[derive(Default)]
pub(crate) struct Inner {
    pub(crate) events: Vec<Event>,
    /// Per-tid stack of open spans (innermost last).
    stacks: HashMap<u32, Vec<OpenSpan>>,
    next_span: SpanId,
    pub(crate) durations: std::collections::BTreeMap<String, DurationStat>,
    pub(crate) counters: std::collections::BTreeMap<String, u64>,
    pub(crate) gauges: std::collections::BTreeMap<String, i64>,
    pub(crate) histograms: std::collections::BTreeMap<String, Histogram>,
}

pub(crate) fn recorder() -> &'static Mutex<Inner> {
    static RECORDER: OnceLock<Mutex<Inner>> = OnceLock::new();
    RECORDER.get_or_init(|| Mutex::new(Inner::default()))
}

/// Guard for an open span; records the end event on drop. Obtain via
/// [`crate::span!`] (or [`span_begin`] directly).
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    /// `None` when recording was disabled at open.
    id: Option<SpanId>,
}

impl SpanGuard {
    /// A guard that records nothing (used when recording is disabled).
    pub fn inert() -> SpanGuard {
        SpanGuard { id: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        if !is_enabled() {
            // Recording stopped while the span was open: drop silently;
            // reset() clears the dangling open-span entry.
            return;
        }
        let (t_ns, tid) = clock_now();
        let mut inner = recorder().lock().unwrap();
        let stack = inner.stacks.entry(tid).or_default();
        // Normally the guard being dropped is the innermost span; search
        // by id to stay correct under overlapping (non-nested) guards.
        let Some(pos) = stack.iter().rposition(|s| s.id == id) else {
            return; // opened before a reset()
        };
        let open = stack.remove(pos);
        let d = t_ns.saturating_sub(open.t_begin_ns);
        inner
            .durations
            .entry(open.name.to_string())
            .or_default()
            .observe(d);
        inner.events.push(Event::SpanEnd {
            id,
            tid,
            t_ns,
            name: open.name,
        });
    }
}

/// Open a span named `name` with structured `fields`. Prefer the
/// [`crate::span!`] macro, which skips field formatting when recording
/// is disabled.
pub fn span_begin(name: &'static str, fields: Vec<(&'static str, String)>) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard::inert();
    }
    let (t_ns, tid) = clock_now();
    let mut inner = recorder().lock().unwrap();
    inner.next_span += 1;
    let id = inner.next_span;
    let stack = inner.stacks.entry(tid).or_default();
    let parent = stack.last().map(|s| s.id).unwrap_or(0);
    stack.push(OpenSpan {
        id,
        name,
        t_begin_ns: t_ns,
    });
    inner.events.push(Event::SpanBegin {
        id,
        parent,
        tid,
        t_ns,
        name,
        fields,
    });
    SpanGuard { id: Some(id) }
}

/// Record a point event (the typed twin of the kernel's string trace).
pub fn instant(label: &str) {
    if !is_enabled() {
        return;
    }
    let (t_ns, tid) = clock_now();
    let mut inner = recorder().lock().unwrap();
    inner.events.push(Event::Instant {
        tid,
        t_ns,
        label: label.to_string(),
    });
}

/// Add `delta` to the named monotonic counter.
pub fn counter_add(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let mut inner = recorder().lock().unwrap();
    *inner.counters.entry(name.to_string()).or_insert(0) += delta;
}

/// Set the named gauge to `value`.
pub fn gauge_set(name: &str, value: i64) {
    if !is_enabled() {
        return;
    }
    let mut inner = recorder().lock().unwrap();
    inner.gauges.insert(name.to_string(), value);
}

/// Record `value` into the named fixed-bucket histogram.
pub fn histogram_observe(name: &str, value: u64) {
    if !is_enabled() {
        return;
    }
    let mut inner = recorder().lock().unwrap();
    inner
        .histograms
        .entry(name.to_string())
        .or_default()
        .observe(value);
}

/// Snapshot of the typed event log, in recording order.
pub fn events() -> Vec<Event> {
    recorder().lock().unwrap().events.clone()
}

#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    // Tests in this crate share the process-global recorder; serialize
    // the ones that enable it.
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_a_noop() {
        let _g = test_guard();
        reset();
        disable();
        let guard = crate::span!("phase", x = 1);
        drop(guard);
        counter_add("c", 5);
        gauge_set("g", -2);
        histogram_observe("h", 17);
        instant("nothing");
        assert!(events().is_empty());
        let inner = recorder().lock().unwrap();
        assert!(inner.counters.is_empty());
        assert!(inner.gauges.is_empty());
        assert!(inner.histograms.is_empty());
    }

    #[test]
    fn spans_nest_per_thread() {
        let _g = test_guard();
        reset();
        enable();
        let outer = crate::span!("outer");
        let inner_span = crate::span!("inner", step = 3);
        drop(inner_span);
        drop(outer);
        disable();
        let evs = events();
        reset();
        assert_eq!(evs.len(), 4);
        match (&evs[0], &evs[1]) {
            (
                Event::SpanBegin {
                    id: outer_id,
                    parent: 0,
                    ..
                },
                Event::SpanBegin { parent, fields, .. },
            ) => {
                assert_eq!(parent, outer_id);
                assert_eq!(fields, &vec![("step", "3".to_string())]);
            }
            other => panic!("unexpected events: {other:?}"),
        }
        assert!(matches!(&evs[2], Event::SpanEnd { name: "inner", .. }));
        assert!(matches!(&evs[3], Event::SpanEnd { name: "outer", .. }));
    }

    #[test]
    fn metrics_accumulate() {
        let _g = test_guard();
        reset();
        enable();
        counter_add("bytes", 10);
        counter_add("bytes", 32);
        gauge_set("depth", 4);
        gauge_set("depth", 2);
        histogram_observe("sizes", 0);
        histogram_observe("sizes", 1);
        histogram_observe("sizes", 1024);
        disable();
        let inner = recorder().lock().unwrap();
        assert_eq!(inner.counters["bytes"], 42);
        assert_eq!(inner.gauges["depth"], 2);
        let h = &inner.histograms["sizes"];
        assert_eq!((h.count, h.sum, h.min, h.max), (3, 1025, 0, 1024));
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[11], 1); // 1024 in [2^10, 2^11)
        drop(inner);
        reset();
    }

    #[test]
    fn histogram_bucket_edges() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 4, 7, 8] {
            h.observe(v);
        }
        assert_eq!(h.buckets[1], 1); // [1, 2)
        assert_eq!(h.buckets[2], 2); // [2, 4): 2, 3
        assert_eq!(h.buckets[3], 2); // [4, 8): 4, 7
        assert_eq!(h.buckets[4], 1); // [8, 16): 8
    }
}
