//! The global recorder: span stacks, the bounded flight recorder, and
//! the metrics registry.
//!
//! One process-wide recorder is enough because the simulation kernel
//! runs exactly one simulated thread at a time: recording happens in
//! scheduler order, the internal `std::sync::Mutex` is uncontended, and
//! the resulting event log is deterministic.
//!
//! The event log is a **flight recorder**: a fixed-capacity ring
//! (default 65536 events, configurable with `OBS_FLIGHT_CAPACITY`) that
//! keeps the most recent events and a monotonic total count. Long
//! always-on runs therefore cost O(capacity) memory, and failure dumps
//! can always append the last-N events that led up to the crash.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::event::{Event, SpanId};
use crate::labels::LabeledRegistry;

/// A virtual-clock source: returns `(now_ns, tid)` for the calling
/// thread. Installed once per process by the simulation kernel.
pub type Clock = fn() -> (u64, u32);

fn default_clock() -> (u64, u32) {
    (0, 0)
}

static CLOCK: OnceLock<Clock> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Default flight-recorder capacity when `OBS_FLIGHT_CAPACITY` is
/// unset.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 65_536;

/// Install the virtual-clock source. The first installation wins;
/// subsequent calls are ignored (the kernel re-installs the same
/// function for every `Kernel`).
pub fn install_clock(clock: Clock) {
    let _ = CLOCK.set(clock);
}

fn clock_now() -> (u64, u32) {
    CLOCK.get().copied().unwrap_or(default_clock as Clock)()
}

/// `true` if recording is enabled. This is the one relaxed atomic load
/// every recording entry point pays when observability is off.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn recording off. Already-recorded data is kept until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Discard all recorded events, open-span state, metadata, and metrics
/// (including the labeled registry — cached
/// [`crate::labels::MetricId`]s become stale and observations through
/// them are dropped). Re-reads `OBS_FLIGHT_CAPACITY`. Call between
/// independent recording sessions (e.g. two runs whose exports are
/// compared byte-for-byte).
pub fn reset() {
    let mut inner = recorder().lock().unwrap();
    *inner = Inner::new();
}

/// Statistics of one span name's closed instances.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct DurationStat {
    /// Closed spans with this name.
    pub count: u64,
    /// Sum of their durations, ns.
    pub total_ns: u64,
    /// Shortest instance, ns.
    pub min_ns: u64,
    /// Longest instance, ns.
    pub max_ns: u64,
}

impl DurationStat {
    fn observe(&mut self, d: u64) {
        if self.count == 0 {
            self.min_ns = d;
            self.max_ns = d;
        } else {
            self.min_ns = self.min_ns.min(d);
            self.max_ns = self.max_ns.max(d);
        }
        self.count += 1;
        self.total_ns += d;
    }

    /// Fold `other` into this stat. Merging an empty stat is a no-op
    /// (its zero min does not pollute the merged minimum); merging into
    /// an empty stat copies `other`.
    pub fn merge(&mut self, other: &DurationStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// A fixed-bucket histogram: bucket `i` counts values `v` with
/// `floor(log2(v)) == i - 1` (bucket 0 counts `v == 0`), i.e.
/// power-of-two buckets up to `2^63`. The bucket layout never depends on
/// the data, which keeps merged and exported output deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket counts; index 0 is the zero bucket, index `i` covers
    /// `[2^(i-1), 2^i)`.
    pub buckets: [u64; 65],
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (saturating at `u64::MAX`).
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }
}

struct OpenSpan {
    id: SpanId,
    name: &'static str,
    t_begin_ns: u64,
}

/// The bounded event log: a ring of the most recent `capacity` events
/// plus a monotonic sequence counter. The sequence number of the oldest
/// retained event is `next_seq - buf.len()`.
pub(crate) struct FlightRing {
    buf: VecDeque<Event>,
    capacity: usize,
    /// Sequence number the next recorded event will get; equals the
    /// total number of events ever recorded since the last reset.
    next_seq: u64,
}

impl FlightRing {
    fn with_capacity(capacity: usize) -> FlightRing {
        FlightRing {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            next_seq: 0,
        }
    }

    pub(crate) fn push(&mut self, ev: Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(ev);
        self.next_seq += 1;
    }

    pub(crate) fn len(&self) -> usize {
        self.buf.len()
    }

    pub(crate) fn total(&self) -> u64 {
        self.next_seq
    }

    /// Sequence number of the oldest retained event.
    fn oldest_seq(&self) -> u64 {
        self.next_seq - self.buf.len() as u64
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Events with sequence `>= cursor` that are still retained, oldest
    /// first. Events evicted before the cursor caught up are silently
    /// skipped (the caller can detect the gap by comparing the cursor it
    /// passed with `oldest_seq`).
    fn since(&self, cursor: u64) -> Vec<Event> {
        let skip = cursor.saturating_sub(self.oldest_seq()) as usize;
        self.buf.iter().skip(skip).cloned().collect()
    }
}

fn flight_capacity_from_env() -> usize {
    std::env::var("OBS_FLIGHT_CAPACITY")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&c| c > 0)
        .unwrap_or(DEFAULT_FLIGHT_CAPACITY)
}

pub(crate) struct Inner {
    pub(crate) flight: FlightRing,
    /// Per-tid stack of open spans (innermost last).
    stacks: HashMap<u32, Vec<OpenSpan>>,
    next_span: SpanId,
    pub(crate) durations: BTreeMap<String, DurationStat>,
    pub(crate) counters: BTreeMap<String, u64>,
    pub(crate) gauges: BTreeMap<String, i64>,
    pub(crate) histograms: BTreeMap<String, Histogram>,
    pub(crate) labeled: LabeledRegistry,
    /// Run metadata stamped into exported traces (chaos seed, fault
    /// schedule, …).
    pub(crate) meta: BTreeMap<String, String>,
}

impl Inner {
    fn new() -> Inner {
        Inner {
            flight: FlightRing::with_capacity(flight_capacity_from_env()),
            stacks: HashMap::new(),
            next_span: 0,
            durations: BTreeMap::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            labeled: LabeledRegistry::default(),
            meta: BTreeMap::new(),
        }
    }
}

pub(crate) fn recorder() -> &'static Mutex<Inner> {
    static RECORDER: OnceLock<Mutex<Inner>> = OnceLock::new();
    RECORDER.get_or_init(|| Mutex::new(Inner::new()))
}

/// Guard for an open span; records the end event on drop. Obtain via
/// [`crate::span!`] (or [`span_begin`] directly).
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    /// `None` when recording was disabled at open.
    id: Option<SpanId>,
}

impl SpanGuard {
    /// A guard that records nothing (used when recording is disabled).
    pub fn inert() -> SpanGuard {
        SpanGuard { id: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        if !is_enabled() {
            // Recording stopped while the span was open: drop silently;
            // reset() clears the dangling open-span entry.
            return;
        }
        let (t_ns, tid) = clock_now();
        let mut inner = recorder().lock().unwrap();
        let stack = inner.stacks.entry(tid).or_default();
        // Normally the guard being dropped is the innermost span; search
        // by id to stay correct under overlapping (non-nested) guards.
        let Some(pos) = stack.iter().rposition(|s| s.id == id) else {
            return; // opened before a reset()
        };
        let open = stack.remove(pos);
        let d = t_ns.saturating_sub(open.t_begin_ns);
        inner
            .durations
            .entry(open.name.to_string())
            .or_default()
            .observe(d);
        inner.flight.push(Event::SpanEnd {
            id,
            tid,
            t_ns,
            name: open.name,
        });
    }
}

/// Open a span named `name` with structured `fields`. Prefer the
/// [`crate::span!`] macro, which skips field formatting when recording
/// is disabled.
pub fn span_begin(name: &'static str, fields: Vec<(&'static str, String)>) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard::inert();
    }
    let (t_ns, tid) = clock_now();
    let mut inner = recorder().lock().unwrap();
    inner.next_span += 1;
    let id = inner.next_span;
    let stack = inner.stacks.entry(tid).or_default();
    let parent = stack.last().map(|s| s.id).unwrap_or(0);
    stack.push(OpenSpan {
        id,
        name,
        t_begin_ns: t_ns,
    });
    inner.flight.push(Event::SpanBegin {
        id,
        parent,
        tid,
        t_ns,
        name,
        fields,
    });
    SpanGuard { id: Some(id) }
}

/// Record a point event (the typed twin of the kernel's string trace).
pub fn instant(label: &str) {
    if !is_enabled() {
        return;
    }
    let (t_ns, tid) = clock_now();
    let mut inner = recorder().lock().unwrap();
    inner.flight.push(Event::Instant {
        tid,
        t_ns,
        label: label.to_string(),
    });
}

/// Add `delta` to the named monotonic counter.
pub fn counter_add(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let mut inner = recorder().lock().unwrap();
    *inner.counters.entry(name.to_string()).or_insert(0) += delta;
}

/// Set the named gauge to `value`.
pub fn gauge_set(name: &str, value: i64) {
    if !is_enabled() {
        return;
    }
    let mut inner = recorder().lock().unwrap();
    inner.gauges.insert(name.to_string(), value);
}

/// Record `value` into the named fixed-bucket histogram.
pub fn histogram_observe(name: &str, value: u64) {
    if !is_enabled() {
        return;
    }
    let mut inner = recorder().lock().unwrap();
    inner
        .histograms
        .entry(name.to_string())
        .or_default()
        .observe(value);
}

/// Stamp a metadata key/value onto the recording (e.g. the active chaos
/// seed). Metadata is exported in the Chrome-trace `otherData` block and
/// the summary, and cleared by [`reset`]. Recorded even while recording
/// is disabled so a repro run is always self-identifying.
pub fn set_meta(key: &str, value: &str) {
    let mut inner = recorder().lock().unwrap();
    inner.meta.insert(key.to_string(), value.to_string());
}

/// Snapshot of the current run metadata, sorted by key.
pub fn meta() -> Vec<(String, String)> {
    let inner = recorder().lock().unwrap();
    inner
        .meta
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

/// Snapshot of the retained flight-recorder events, oldest first. Note
/// this is the ring **tail** — at most [`flight_capacity`] events; use
/// [`events_total`] for the monotonic count and [`events_since`] for
/// incremental reads that do not re-clone already-seen events.
pub fn events() -> Vec<Event> {
    let inner = recorder().lock().unwrap();
    inner.flight.iter().cloned().collect()
}

/// Total number of events recorded since the last [`reset`], including
/// events already evicted from the ring.
pub fn events_total() -> u64 {
    recorder().lock().unwrap().flight.total()
}

/// The flight recorder's current capacity (events retained).
pub fn flight_capacity() -> usize {
    recorder().lock().unwrap().flight.capacity
}

/// Incremental event read: returns the retained events with sequence
/// `>= cursor` and the next cursor to pass. Start with cursor 0; each
/// call returns only events not seen by the previous call, so pollers
/// never re-clone the whole buffer. If more than `capacity` events were
/// recorded between calls the evicted ones are skipped (compare the
/// returned cursor delta with the returned length to detect the gap).
pub fn events_since(cursor: u64) -> (Vec<Event>, u64) {
    let inner = recorder().lock().unwrap();
    (inner.flight.since(cursor), inner.flight.total())
}

/// The last `n` flight-recorder events rendered one per line (oldest
/// first), prefixed with a header naming how many of the total they are.
/// Used by deadlock/livelock dumps and chaos failure reports; returns an
/// empty string when nothing was recorded.
pub fn flight_tail(n: usize) -> String {
    use std::fmt::Write as _;
    let inner = recorder().lock().unwrap();
    let len = inner.flight.len();
    if len == 0 {
        return String::new();
    }
    let take = n.min(len);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "flight recorder (last {take} of {} events):",
        inner.flight.total()
    );
    for ev in inner.flight.iter().skip(len - take) {
        let _ = writeln!(out, "  {}", ev.one_line());
    }
    out
}

#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    // Tests in this crate share the process-global recorder; serialize
    // the ones that enable it.
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_a_noop() {
        let _g = test_guard();
        reset();
        disable();
        let guard = crate::span!("phase", x = 1);
        drop(guard);
        counter_add("c", 5);
        gauge_set("g", -2);
        histogram_observe("h", 17);
        instant("nothing");
        assert!(events().is_empty());
        assert_eq!(events_total(), 0);
        let inner = recorder().lock().unwrap();
        assert!(inner.counters.is_empty());
        assert!(inner.gauges.is_empty());
        assert!(inner.histograms.is_empty());
    }

    #[test]
    fn spans_nest_per_thread() {
        let _g = test_guard();
        reset();
        enable();
        let outer = crate::span!("outer");
        let inner_span = crate::span!("inner", step = 3);
        drop(inner_span);
        drop(outer);
        disable();
        let evs = events();
        reset();
        assert_eq!(evs.len(), 4);
        match (&evs[0], &evs[1]) {
            (
                Event::SpanBegin {
                    id: outer_id,
                    parent: 0,
                    ..
                },
                Event::SpanBegin { parent, fields, .. },
            ) => {
                assert_eq!(parent, outer_id);
                assert_eq!(fields, &vec![("step", "3".to_string())]);
            }
            other => panic!("unexpected events: {other:?}"),
        }
        assert!(matches!(&evs[2], Event::SpanEnd { name: "inner", .. }));
        assert!(matches!(&evs[3], Event::SpanEnd { name: "outer", .. }));
    }

    #[test]
    fn metrics_accumulate() {
        let _g = test_guard();
        reset();
        enable();
        counter_add("bytes", 10);
        counter_add("bytes", 32);
        gauge_set("depth", 4);
        gauge_set("depth", 2);
        histogram_observe("sizes", 0);
        histogram_observe("sizes", 1);
        histogram_observe("sizes", 1024);
        disable();
        let inner = recorder().lock().unwrap();
        assert_eq!(inner.counters["bytes"], 42);
        assert_eq!(inner.gauges["depth"], 2);
        let h = &inner.histograms["sizes"];
        assert_eq!((h.count, h.sum, h.min, h.max), (3, 1025, 0, 1024));
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[11], 1); // 1024 in [2^10, 2^11)
        drop(inner);
        reset();
    }

    #[test]
    fn histogram_bucket_edges() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 4, 7, 8] {
            h.observe(v);
        }
        assert_eq!(h.buckets[1], 1); // [1, 2)
        assert_eq!(h.buckets[2], 2); // [2, 4): 2, 3
        assert_eq!(h.buckets[3], 2); // [4, 8): 4, 7
        assert_eq!(h.buckets[4], 1); // [8, 16): 8
    }

    #[test]
    fn histogram_pow2_boundaries_and_extremes() {
        let mut h = Histogram::default();
        h.observe(0);
        assert_eq!(h.buckets[0], 1, "0 lands in the zero bucket");
        h.observe(1);
        assert_eq!(h.buckets[1], 1, "1 lands in [1,2)");
        // Exact powers of two open their own bucket: 2^k -> bucket k+1.
        for k in [1u32, 2, 10, 32, 62] {
            let mut p = Histogram::default();
            p.observe(1u64 << k);
            assert_eq!(p.buckets[k as usize + 1], 1, "2^{k}");
            // One below the power stays in the previous bucket.
            p.observe((1u64 << k) - 1);
            assert_eq!(p.buckets[k as usize], 1, "2^{k}-1");
        }
        // u64::MAX lands in the last bucket and the sum saturates
        // instead of overflowing.
        let mut m = Histogram::default();
        m.observe(u64::MAX);
        m.observe(u64::MAX);
        assert_eq!(m.buckets[64], 2);
        assert_eq!(m.sum, u64::MAX, "sum saturates at u64::MAX");
        assert_eq!((m.min, m.max, m.count), (u64::MAX, u64::MAX, 2));
    }

    #[test]
    fn duration_stat_merge_handles_empty_sides() {
        let mut a = DurationStat::default();
        let empty = DurationStat::default();
        a.merge(&empty);
        assert_eq!(a, DurationStat::default(), "empty + empty stays empty");
        let full = DurationStat {
            count: 2,
            total_ns: 30,
            min_ns: 10,
            max_ns: 20,
        };
        a.merge(&full);
        assert_eq!(a, full, "empty absorbs other verbatim");
        let mut b = DurationStat {
            count: 1,
            total_ns: 5,
            min_ns: 5,
            max_ns: 5,
        };
        b.merge(&full);
        assert_eq!(
            b,
            DurationStat {
                count: 3,
                total_ns: 35,
                min_ns: 5,
                max_ns: 20
            }
        );
        b.merge(&empty);
        assert_eq!(b.count, 3, "merging empty is a no-op");
        assert_eq!(b.min_ns, 5, "empty stat's zero min must not leak in");
    }

    #[test]
    fn flight_ring_is_bounded_with_monotonic_sequence() {
        let mut ring = FlightRing::with_capacity(4);
        for i in 0..10u64 {
            ring.push(Event::Instant {
                tid: 0,
                t_ns: i,
                label: format!("e{i}"),
            });
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.total(), 10);
        assert_eq!(ring.oldest_seq(), 6);
        let tail: Vec<u64> = ring.iter().map(|e| e.t_ns()).collect();
        assert_eq!(tail, vec![6, 7, 8, 9]);
        // Cursor before the oldest retained event skips the gap.
        assert_eq!(ring.since(0).len(), 4);
        assert_eq!(ring.since(8).len(), 2);
        assert_eq!(ring.since(10).len(), 0);
    }

    #[test]
    fn events_since_is_incremental() {
        let _g = test_guard();
        reset();
        enable();
        instant("a");
        instant("b");
        let (batch, cursor) = events_since(0);
        assert_eq!(batch.len(), 2);
        assert_eq!(cursor, 2);
        let (batch, cursor) = events_since(cursor);
        assert!(batch.is_empty());
        instant("c");
        let (batch, cursor) = events_since(cursor);
        assert_eq!(batch.len(), 1);
        assert_eq!(cursor, 3);
        disable();
        reset();
    }

    /// The acceptance bound for the flight recorder: a run emitting a
    /// million events at `OBS_FLIGHT_CAPACITY=4096` holds at most 4096
    /// in memory while the monotonic total still counts every one.
    #[test]
    fn million_events_stay_bounded_by_configured_capacity() {
        let _g = test_guard();
        std::env::set_var("OBS_FLIGHT_CAPACITY", "4096");
        reset(); // re-reads the env var
        std::env::remove_var("OBS_FLIGHT_CAPACITY");
        assert_eq!(flight_capacity(), 4096);
        enable();
        const N: u64 = 1_000_000;
        for i in 0..N {
            instant(if i % 2 == 0 { "tick" } else { "tock" });
        }
        disable();
        assert_eq!(events_total(), N, "every event is counted");
        let tail = events();
        assert_eq!(tail.len(), 4096, "but only capacity are retained");
        // The retained window is exactly the newest 4096: a cursor at
        // the oldest retained sequence returns the full window.
        let (batch, cursor) = events_since(N - 4096);
        assert_eq!(batch.len(), 4096);
        assert_eq!(cursor, N);
        // flight_tail renders from the same bounded window.
        let dump = flight_tail(8);
        assert!(dump.starts_with("flight recorder (last 8 of 1000000 events):"));
        reset(); // env var is gone: capacity returns to the default
        assert_eq!(flight_capacity(), DEFAULT_FLIGHT_CAPACITY);
    }

    #[test]
    fn meta_survives_disable_and_clears_on_reset() {
        let _g = test_guard();
        reset();
        disable();
        set_meta("chaos.seed", "42");
        assert_eq!(meta(), vec![("chaos.seed".into(), "42".into())]);
        reset();
        assert!(meta().is_empty());
    }
}
