//! The typed event model: what the string labels of
//! `simkernel::Kernel::trace_event` grow up into.

/// Identifier of a span, unique within one recording session. `0` is
/// reserved for "no span" (used as the parent of top-level spans).
pub type SpanId = u64;

/// A typed observability event, stamped with virtual time.
///
/// Events are recorded in scheduler order, which under the simulation
/// kernel's single-token discipline is deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A span opened.
    SpanBegin {
        /// This span's id.
        id: SpanId,
        /// Innermost span already open on the same simulated thread, or
        /// `0` for a top-level span.
        parent: SpanId,
        /// Simulated thread that opened the span.
        tid: u32,
        /// Virtual time of the open, in nanoseconds.
        t_ns: u64,
        /// Phase name (e.g. `"snapify.pause"`).
        name: &'static str,
        /// Structured fields attached at open.
        fields: Vec<(&'static str, String)>,
    },
    /// A span closed.
    SpanEnd {
        /// Id of the span being closed.
        id: SpanId,
        /// Simulated thread that closed the span.
        tid: u32,
        /// Virtual time of the close, in nanoseconds.
        t_ns: u64,
        /// Phase name, repeated for self-contained consumption.
        name: &'static str,
    },
    /// A point event (the typed form of the kernel's string trace
    /// labels).
    Instant {
        /// Simulated thread the event concerns.
        tid: u32,
        /// Virtual time, in nanoseconds.
        t_ns: u64,
        /// Event label.
        label: String,
    },
}

impl Event {
    /// Virtual timestamp of the event, in nanoseconds.
    pub fn t_ns(&self) -> u64 {
        match self {
            Event::SpanBegin { t_ns, .. }
            | Event::SpanEnd { t_ns, .. }
            | Event::Instant { t_ns, .. } => *t_ns,
        }
    }

    /// Simulated thread the event concerns.
    pub fn tid(&self) -> u32 {
        match self {
            Event::SpanBegin { tid, .. }
            | Event::SpanEnd { tid, .. }
            | Event::Instant { tid, .. } => *tid,
        }
    }

    /// Render the event as one human-readable line:
    /// `t=<ns> tid=<tid> <kind> <name> [fields]`. Used by the flight
    /// recorder's dump tail.
    pub fn one_line(&self) -> String {
        use std::fmt::Write as _;
        match self {
            Event::SpanBegin {
                id,
                parent,
                tid,
                t_ns,
                name,
                fields,
            } => {
                let mut s = format!("t={t_ns} tid={tid} B {name} span={id} parent={parent}");
                for (k, v) in fields {
                    let _ = write!(s, " {k}={v}");
                }
                s
            }
            Event::SpanEnd {
                id,
                tid,
                t_ns,
                name,
            } => {
                format!("t={t_ns} tid={tid} E {name} span={id}")
            }
            Event::Instant { tid, t_ns, label } => {
                format!("t={t_ns} tid={tid} i {label}")
            }
        }
    }
}
