//! # serving — FaaS-style multi-tenant serving over swapped tenants
//!
//! The paper pitches swap-out/swap-in as a way to time-share a Phi card
//! among more offload tenants than fit in device memory (§6). This
//! crate turns that pitch into a measurable serving scenario:
//!
//! * [`traffic`] — deterministic open-loop arrival processes (Poisson
//!   and bursty) over a Zipf-skewed tenant population, replayable from
//!   a single `u64` seed;
//! * [`policy`] — pluggable eviction policies (LRU, popularity-aware,
//!   cost-aware on per-tenant swap-size estimates) deciding which
//!   resident tenants yield device memory, mirrored onto the snapstore
//!   restore cache;
//! * [`engine`] — the request-driven serving layer above
//!   `SwapScheduler`: requests for a swapped-out tenant trigger an
//!   on-demand swap-in, resident tenants serve warm;
//! * [`report`] — per-class cold/warm time-to-first-compute
//!   percentiles, SLO breaches, and a byte-stable summary string.

#![warn(missing_docs)]

pub mod engine;
pub mod policy;
pub mod report;
pub mod traffic;

pub use engine::{run_scenario, run_scenario_with_faults, ServingConfig, TenantClass};
pub use policy::EvictionPolicy;
pub use report::{ServingReport, StartStats};
pub use traffic::{generate, Arrival, ArrivalProcess, TrafficConfig};
