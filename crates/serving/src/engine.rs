//! The request-driven serving layer above `SwapScheduler`.
//!
//! [`run_scenario`] boots a full Snapify world, creates the tenant
//! population (admitted and immediately parked, so every tenant starts
//! swapped out), then replays an open-loop arrival schedule against it:
//!
//! * a request for a **resident** tenant is served warm — a worker
//!   thread pins the tenant, runs one touch offload, and records the
//!   time from arrival to the compute's completion;
//! * a request for a **swapped-out** tenant is a cold start — the
//!   tenant joins the miss queue, a swap worker finds it a device
//!   (evicting a victim chosen by the configured [`EvictionPolicy`] if
//!   none is free), demand-swaps it in via
//!   `SwapScheduler::swap_in`, and runs the first compute; every
//!   request that arrived while the tenant was away is recorded
//!   against that first compute.
//!
//! Time-to-first-compute lands in engine-local latency sketches (cold
//! and warm, per tenant class), per-class `SloMonitor`s, and — when the
//! global recorder is on — `serving.ttfc_ns` labeled sketches with
//! `tenant`/`class`/`start` dimensions.

use std::sync::Arc;

use coi_sim::{CoiBuffer, CoiConfig, CoiProcessHandle, DeviceBinary, FunctionRegistry};
use phi_platform::{FaultSchedule, Payload, PlatformParams};
use simkernel::obs;
use simkernel::obs::{LatencySketch, SloMonitor, SloSpec};
use simkernel::{now, sleep, SimChannel, SimMutex};
use snapify::{JobId, SnapifyWorld, SwapScheduler};
use snapstore::DedupConfig;
use workloads::WorkloadSpec;

use crate::policy::{choose_victim, EvictionPolicy, VictimInfo};
use crate::report::{ClassReport, ServingReport, StartStats};
use crate::traffic::{generate, TrafficConfig};

/// One tenant class: a function-sized workload image, its share of the
/// population, and an optional per-class time-to-first-compute SLO.
#[derive(Clone, Debug)]
pub struct TenantClass {
    /// The class's workload profile (image sizes, touch compute cost).
    pub workload: WorkloadSpec,
    /// Relative share of the tenant population (tenant `i` belongs to
    /// the class owning slot `i mod total_shares`).
    pub share: u32,
    /// Optional SLO evaluated over the class's time-to-first-compute.
    pub slo: Option<SloSpec>,
}

impl TenantClass {
    /// The default three-class mix from `workloads::serving_classes`,
    /// smallest class most numerous. SLOs are generous enough that a
    /// fault-free run stays clean; chaos runs breach them.
    pub fn defaults() -> Vec<TenantClass> {
        let slos = ["ttfc.p99 < 4s over 10s", "ttfc.p99 < 6s over 10s", ""];
        let shares = [4, 2, 1];
        workloads::serving_classes()
            .into_iter()
            .zip(slos)
            .zip(shares)
            .map(|((workload, slo), share)| TenantClass {
                workload,
                share,
                slo: (!slo.is_empty()).then(|| SloSpec::parse(slo).expect("default SLO parses")),
            })
            .collect()
    }
}

/// Everything one serving run needs.
#[derive(Clone, Debug)]
pub struct ServingConfig {
    /// Coprocessors behind the serving layer.
    pub devices: usize,
    /// Concurrent cold-start placements (swap workers draining the miss
    /// queue).
    pub swap_workers: usize,
    /// Eviction policy, also mirrored onto the snapstore restore cache.
    pub policy: EvictionPolicy,
    /// The open-loop traffic schedule.
    pub traffic: TrafficConfig,
    /// Tenant classes (weighted by `share`).
    pub classes: Vec<TenantClass>,
    /// Admission policy: a cold request arriving while this many cold
    /// requests are already queued is rejected outright (`None` =
    /// admit everything).
    pub admission_limit: Option<usize>,
    /// Byte budget of each device's snapstore restore cache.
    pub restore_cache_bytes: u64,
    /// Platform parameters (`num_devices` is overridden by `devices`).
    pub params: PlatformParams,
}

impl Default for ServingConfig {
    fn default() -> ServingConfig {
        ServingConfig {
            devices: 4,
            swap_workers: 2,
            policy: EvictionPolicy::Lru,
            traffic: TrafficConfig::default(),
            classes: TenantClass::defaults(),
            admission_limit: None,
            restore_cache_bytes: 256 << 20,
            params: PlatformParams::default(),
        }
    }
}

/// Where one tenant currently is in the serving state machine.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TState {
    /// Swapped out, no request outstanding.
    Parked,
    /// Swapped out, waiting in the miss queue.
    Enqueued,
    /// A swap worker is restoring it.
    SwappingIn,
    /// Resident on a device, serving warm.
    Resident(usize),
    /// A swap worker is parking it to free its device.
    Evicting,
}

struct Tenant {
    job: JobId,
    handle: CoiProcessHandle,
    _buf: Arc<CoiBuffer>,
    class: usize,
    name: Arc<str>,
    state: TState,
    /// Warm requests (and the first compute) currently holding the
    /// tenant on its device; an eviction victim must be unpinned.
    pins: u32,
    /// Arrival times (ns) of requests waiting for the next swap-in.
    pending: Vec<u64>,
    /// Engine tick of the most recent request (recency for LRU).
    last_tick: u64,
    /// Requests received so far (popularity).
    requests: u64,
}

struct Shared {
    tenants: Vec<Tenant>,
    /// Device → resident tenant.
    device_owner: Vec<Option<usize>>,
    /// Devices claimed by an in-flight placement (victim being parked
    /// or target being swapped in).
    claimed: Vec<bool>,
    tick: u64,
    /// Cold requests admitted but not yet served.
    queued: usize,
    rejected: u64,
    recorded: u64,
    resident_now: usize,
    max_resident: usize,
    closed: bool,
    cold: LatencySketch,
    warm: LatencySketch,
    class_cold: Vec<LatencySketch>,
    class_warm: Vec<LatencySketch>,
    monitors: Vec<Option<SloMonitor>>,
}

impl Shared {
    /// Record one served request and return whether it was the last.
    fn record(&mut self, class: usize, class_name: &str, tenant: &str, lat_ns: u64, warm: bool) {
        if warm {
            self.warm.observe(lat_ns);
            self.class_warm[class].observe(lat_ns);
        } else {
            self.cold.observe(lat_ns);
            self.class_cold[class].observe(lat_ns);
        }
        if let Some(m) = &mut self.monitors[class] {
            m.observe(class_name, now().as_nanos(), lat_ns);
        }
        if obs::is_enabled() {
            let start = if warm { "warm" } else { "cold" };
            obs::sketch_observe_labeled(
                "serving.ttfc_ns",
                &[("class", class_name), ("start", start), ("tenant", tenant)],
                lat_ns,
            );
        }
        self.recorded += 1;
    }

    fn all_done(&self, total: u64) -> bool {
        self.recorded + self.rejected == total
    }
}

/// How often a stuck placement rechecks for an eligible victim, and how
/// long transient swap errors (injected faults) are retried before the
/// scenario gives up.
const RETRY_PAUSE_MS: u64 = 10;
const MAX_SWAP_RETRIES: usize = 50;

fn retry<T>(what: &str, tenant: &str, mut f: impl FnMut() -> Result<T, String>) -> T {
    for attempt in 0..MAX_SWAP_RETRIES {
        match f() {
            Ok(v) => return v,
            Err(e) if attempt + 1 < MAX_SWAP_RETRIES => {
                obs::counter_add("serving.swap_retries", 1);
                let _ = e;
                sleep(simkernel::time::ms(RETRY_PAUSE_MS));
            }
            Err(e) => panic!("serving: {what} for {tenant} kept failing: {e}"),
        }
    }
    unreachable!()
}

/// Run one complete serving scenario. Must be called from a simulated
/// thread (`Kernel::run_root`, a cluster node body, …); everything —
/// world boot, tenant creation, the open-loop replay — happens in
/// virtual time, and the report is deterministic for a given config.
pub fn run_scenario(cfg: &ServingConfig) -> ServingReport {
    run_scenario_with_faults(cfg, FaultSchedule::none()).0
}

/// Like [`run_scenario`], but with an injected fault schedule (the chaos
/// plane's entry point). Also returns how many scheduled faults fired.
pub fn run_scenario_with_faults(
    cfg: &ServingConfig,
    faults: FaultSchedule,
) -> (ServingReport, usize) {
    assert!(!cfg.classes.is_empty(), "need at least one tenant class");
    assert!(cfg.swap_workers >= 1, "need at least one swap worker");
    let arrivals = generate(&cfg.traffic);
    let total = arrivals.len() as u64;

    // One device binary per class; the touch function is the class's
    // per-step compute.
    let registry = FunctionRegistry::new();
    for class in &cfg.classes {
        let w = &class.workload;
        let flops = w.flops_per_step;
        registry.register(
            DeviceBinary::new(w.binary_name(), w.binary_bytes, w.device_resident_bytes)
                .simple_function("touch", move |ctx| {
                    ctx.compute(flops, 60);
                    Vec::new()
                }),
        );
    }
    let mut params = cfg.params.clone();
    params.num_devices = cfg.devices;
    let world = SnapifyWorld::boot_dedup_with_faults(
        params,
        CoiConfig::default(),
        registry,
        DedupConfig {
            restore_cache_bytes: cfg.restore_cache_bytes,
            cache_policy: cfg.policy.cache_policy(),
            ..DedupConfig::default()
        },
        faults,
    );
    let store = world.store().expect("dedup world").clone();
    let sched = SwapScheduler::new(cfg.devices, "/swap/serving").with_store(&store);

    // Create the population: each tenant is admitted on device 0 and
    // parked before the next is created, so setup never holds more than
    // one tenant resident.
    let total_shares: u32 = cfg.classes.iter().map(|c| c.share.max(1)).sum();
    let class_of = |i: usize| -> usize {
        let mut slot = (i as u32) % total_shares;
        for (c, class) in cfg.classes.iter().enumerate() {
            let share = class.share.max(1);
            if slot < share {
                return c;
            }
            slot -= share;
        }
        unreachable!()
    };
    let mut tenants = Vec::with_capacity(cfg.traffic.tenants);
    for i in 0..cfg.traffic.tenants {
        let c = class_of(i);
        let w = &cfg.classes[c].workload;
        let host = world.coi().create_host_process(&format!("t{i}"));
        let handle = world
            .coi()
            .create_process(&host, 0, &w.binary_name())
            .expect("tenant process creation");
        let buf = handle.create_buffer(w.in_bytes).expect("tenant buffer");
        handle
            .buffer_write(&buf, Payload::synthetic(i as u64, w.in_bytes))
            .expect("tenant buffer seed");
        let job = sched.admit_tagged(&handle, 0, &format!("t{i}"));
        sched.park(job).expect("initial park");
        tenants.push(Tenant {
            job,
            handle,
            _buf: buf,
            class: c,
            name: Arc::from(format!("t{i}").as_str()),
            state: TState::Parked,
            pins: 0,
            pending: Vec::new(),
            last_tick: 0,
            requests: 0,
        });
    }

    let class_names: Arc<Vec<String>> = Arc::new(
        cfg.classes
            .iter()
            .map(|c| c.workload.name.to_string())
            .collect(),
    );
    let shared = Arc::new(SimMutex::new(
        "serving-state",
        Shared {
            tenants,
            device_owner: vec![None; cfg.devices],
            claimed: vec![false; cfg.devices],
            tick: 0,
            queued: 0,
            rejected: 0,
            recorded: 0,
            resident_now: 0,
            max_resident: 0,
            closed: false,
            cold: LatencySketch::new(),
            warm: LatencySketch::new(),
            class_cold: vec![LatencySketch::new(); cfg.classes.len()],
            class_warm: vec![LatencySketch::new(); cfg.classes.len()],
            monitors: cfg
                .classes
                .iter()
                .map(|c| c.slo.clone().map(SloMonitor::new))
                .collect(),
        },
    ));
    let miss: SimChannel<usize> = SimChannel::unbounded("serving-miss");

    // Swap workers: drain the miss queue, place tenants, run their
    // first compute.
    let workers: Vec<_> = (0..cfg.swap_workers)
        .map(|wi| {
            let shared = Arc::clone(&shared);
            let sched = sched.clone();
            let miss = miss.clone();
            let class_names = Arc::clone(&class_names);
            let policy = cfg.policy;
            let devices = cfg.devices;
            simkernel::spawn(format!("swap-worker-{wi}"), move || {
                while let Ok(t) = miss.recv() {
                    place(
                        t,
                        &shared,
                        &sched,
                        &miss,
                        &class_names,
                        policy,
                        devices,
                        total,
                    );
                }
            })
        })
        .collect();

    // The open-loop dispatcher: this thread IS the arrival process.
    let t0 = now();
    let mut warm_joins = Vec::new();
    for a in &arrivals {
        let target = t0 + simkernel::SimDuration::from_nanos(a.at_ns);
        if now() < target {
            sleep(target - now());
        }
        let mut s = shared.lock();
        s.tick += 1;
        let tick = s.tick;
        let over_limit = cfg.admission_limit.is_some_and(|l| s.queued >= l);
        let t = &mut s.tenants[a.tenant];
        t.last_tick = tick;
        t.requests += 1;
        match t.state {
            TState::Resident(_) => {
                t.pins += 1;
                let handle = t.handle.clone();
                let name = Arc::clone(&t.name);
                let tenant = a.tenant;
                let class = t.class;
                let class_name = class_names[class].clone();
                let at_ns = now().as_nanos();
                drop(s);
                let shared = Arc::clone(&shared);
                let miss = miss.clone();
                warm_joins.push(simkernel::spawn(format!("warm-{}", name), move || {
                    retry("warm touch", &name, || {
                        handle
                            .run_sync("touch", Vec::new(), &[])
                            .map(|_| ())
                            .map_err(|e| format!("{e:?}"))
                    });
                    let lat = now().as_nanos() - at_ns;
                    let mut s = shared.lock();
                    s.record(class, &class_name, &name, lat, true);
                    s.tenants[tenant].pins -= 1;
                    let done = s.all_done(total) && !s.closed;
                    if done {
                        s.closed = true;
                    }
                    drop(s);
                    if done {
                        miss.close();
                    }
                }));
            }
            _ if over_limit => {
                s.rejected += 1;
                let done = s.all_done(total) && !s.closed;
                if done {
                    s.closed = true;
                }
                drop(s);
                if done {
                    miss.close();
                }
            }
            TState::Parked => {
                t.pending.push(now().as_nanos());
                t.state = TState::Enqueued;
                let tenant = a.tenant;
                s.queued += 1;
                drop(s);
                miss.send(tenant)
                    .expect("miss queue open while dispatching");
            }
            TState::Enqueued | TState::SwappingIn | TState::Evicting => {
                t.pending.push(now().as_nanos());
                s.queued += 1;
            }
        }
    }
    for j in warm_joins {
        j.join();
    }
    // All-rejected (or zero-request) runs never hit a record path.
    {
        let mut s = shared.lock();
        let done = s.all_done(total) && !s.closed;
        if done {
            s.closed = true;
        }
        drop(s);
        if done {
            miss.close();
        }
    }
    for w in workers {
        w.join();
    }

    // Assemble the report.
    let mut s = shared.lock();
    let breaches: Vec<String> = s
        .monitors
        .iter_mut()
        .flatten()
        .flat_map(|m| {
            m.flush();
            m.breaches().iter().map(|b| b.render()).collect::<Vec<_>>()
        })
        .collect();
    let classes = (0..cfg.classes.len())
        .map(|c| ClassReport {
            class: class_names[c].clone(),
            cold: StartStats::from_sketch(&s.class_cold[c]),
            warm: StartStats::from_sketch(&s.class_warm[c]),
            slo: cfg.classes[c].slo.as_ref().map(|spec| spec.render()),
            breaches: s.monitors[c].as_ref().map_or(0, |m| m.breaches().len()),
        })
        .collect();
    let stats = store.stats();
    let fired = world.server().faults().fired_count();
    let overall = {
        let mut merged = s.cold.clone();
        merged.merge(&s.warm);
        StartStats::from_sketch(&merged)
    };
    let report = ServingReport {
        policy: cfg.policy.label().to_string(),
        seed: cfg.traffic.seed,
        tenants: cfg.traffic.tenants,
        devices: cfg.devices,
        requests: total,
        admitted: total - s.rejected,
        rejected: s.rejected,
        cold: StartStats::from_sketch(&s.cold),
        warm: StartStats::from_sketch(&s.warm),
        overall,
        classes,
        breaches,
        swaps: sched.swap_count(),
        max_resident: s.max_resident,
        restore_chunks_warm: stats.restore_chunks_warm,
        restore_chunks_cold: stats.restore_chunks_cold,
        restore_bytes_avoided: stats.restore_bytes_avoided,
        capture_dirty_bytes: stats.capture_dirty_bytes,
        capture_clean_bytes: stats.capture_clean_bytes,
    };
    (report, fired)
}

/// One cold placement: find a device (evicting a policy victim if none
/// is free), demand-swap the tenant in, run its first compute, and
/// record every request that was waiting on it.
#[allow(clippy::too_many_arguments)]
fn place(
    tenant: usize,
    shared: &Arc<SimMutex<Shared>>,
    sched: &SwapScheduler,
    miss: &SimChannel<usize>,
    class_names: &[String],
    policy: EvictionPolicy,
    devices: usize,
    total: u64,
) {
    // Phase 1: claim a device.
    let device = loop {
        enum Plan {
            Free(usize),
            Evict { victim: usize, device: usize },
            Wait,
        }
        let plan = {
            let mut s = shared.lock();
            if let Some(d) = (0..devices).find(|&d| s.device_owner[d].is_none() && !s.claimed[d]) {
                s.claimed[d] = true;
                Plan::Free(d)
            } else {
                let candidates: Vec<VictimInfo> = s
                    .tenants
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| match t.state {
                        TState::Resident(d) if t.pins == 0 && !s.claimed[d] => Some(VictimInfo {
                            tenant: i,
                            last_tick: t.last_tick,
                            requests: t.requests,
                            swap_cost: sched.swap_size_estimate(t.job).unwrap_or(u64::MAX),
                        }),
                        _ => None,
                    })
                    .collect();
                match choose_victim(policy, &candidates) {
                    Some(v) => {
                        let TState::Resident(d) = s.tenants[v].state else {
                            unreachable!("candidates are resident")
                        };
                        s.claimed[d] = true;
                        s.tenants[v].state = TState::Evicting;
                        Plan::Evict {
                            victim: v,
                            device: d,
                        }
                    }
                    None => Plan::Wait,
                }
            }
        };
        match plan {
            Plan::Free(d) => break d,
            Plan::Evict { victim, device } => {
                let (job, name) = {
                    let s = shared.lock();
                    (s.tenants[victim].job, Arc::clone(&s.tenants[victim].name))
                };
                retry("evicting park", &name, || {
                    sched.park(job).map_err(|e| format!("{e:?}"))
                });
                let requeue = {
                    let mut s = shared.lock();
                    s.device_owner[device] = None;
                    s.resident_now -= 1;
                    let t = &mut s.tenants[victim];
                    if t.pending.is_empty() {
                        t.state = TState::Parked;
                        false
                    } else {
                        // Requests arrived mid-eviction: back in line.
                        t.state = TState::Enqueued;
                        true
                    }
                };
                if requeue {
                    let _ = miss.send(victim);
                }
                break device;
            }
            Plan::Wait => sleep(simkernel::time::ms(RETRY_PAUSE_MS)),
        }
    };

    // Phase 2: demand swap-in onto the claimed device, then the first
    // compute. The pin covers the compute so a concurrent placement
    // cannot evict the tenant before it serves its waiters.
    let (job, handle, name, class) = {
        let mut s = shared.lock();
        let t = &mut s.tenants[tenant];
        t.state = TState::SwappingIn;
        (t.job, t.handle.clone(), Arc::clone(&t.name), t.class)
    };
    retry("demand swap-in", &name, || {
        sched.swap_in(job, device).map_err(|e| format!("{e:?}"))
    });
    {
        let mut s = shared.lock();
        s.tenants[tenant].state = TState::Resident(device);
        s.tenants[tenant].pins += 1;
        s.device_owner[device] = Some(tenant);
        s.claimed[device] = false;
        s.resident_now += 1;
        s.max_resident = s.max_resident.max(s.resident_now);
    }
    retry("first compute", &name, || {
        handle
            .run_sync("touch", Vec::new(), &[])
            .map(|_| ())
            .map_err(|e| format!("{e:?}"))
    });
    let now_ns = now().as_nanos();
    let done = {
        let mut s = shared.lock();
        let waiters = std::mem::take(&mut s.tenants[tenant].pending);
        s.queued -= waiters.len();
        let class_name = class_names[class].clone();
        for at in waiters {
            s.record(class, &class_name, &name, now_ns - at, false);
        }
        s.tenants[tenant].pins -= 1;
        let done = s.all_done(total) && !s.closed;
        if done {
            s.closed = true;
        }
        done
    };
    if done {
        miss.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::Kernel;

    fn small_config(policy: EvictionPolicy) -> ServingConfig {
        ServingConfig {
            devices: 2,
            swap_workers: 2,
            policy,
            traffic: TrafficConfig {
                tenants: 8,
                zipf_s: 1.2,
                rate_per_sec: 10.0,
                requests: 120,
                ..TrafficConfig::default()
            },
            ..ServingConfig::default()
        }
    }

    #[test]
    fn every_admitted_request_is_served_and_capacity_holds() {
        for policy in EvictionPolicy::ALL {
            let report = Kernel::run_root(move || run_scenario(&small_config(policy)));
            assert_eq!(report.rejected, 0);
            assert_eq!(
                report.cold.count + report.warm.count,
                report.admitted,
                "{policy:?}: every admitted request reaches first-compute\n{}",
                report.summary()
            );
            assert_eq!(report.overall.count, report.cold.count + report.warm.count);
            assert!(report.max_resident <= report.devices);
            assert!(report.cold.count > 0, "{policy:?}: skew never misses?");
            assert!(report.warm.count > 0, "{policy:?}: skew never hits?");
            assert!(
                report.warm.p99_ns < report.cold.p99_ns,
                "{policy:?}: warm starts must beat cold starts\n{}",
                report.summary()
            );
        }
    }

    #[test]
    fn admission_limit_rejects_overload() {
        let report = Kernel::run_root(|| {
            run_scenario(&ServingConfig {
                admission_limit: Some(2),
                swap_workers: 1,
                traffic: TrafficConfig {
                    tenants: 16,
                    zipf_s: 0.0, // uniform: nearly everything misses
                    rate_per_sec: 100.0,
                    requests: 200,
                    ..TrafficConfig::default()
                },
                ..small_config(EvictionPolicy::Lru)
            })
        });
        assert!(report.rejected > 0, "overload must trip the limiter");
        assert_eq!(report.cold.count + report.warm.count, report.admitted);
    }
}
