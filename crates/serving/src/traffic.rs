//! Deterministic open-loop traffic generation.
//!
//! The generator turns one `u64` seed into a complete arrival schedule
//! before the simulation starts: every request's virtual arrival time
//! and target tenant is fixed up front, so the load does not slow down
//! when the system falls behind (open loop) and two runs with the same
//! seed replay byte-identically.

/// splitmix64 — the repo's standard small PRNG (same update as the
/// chaos plane and the simkernel tie-breaker).
pub struct TrafficRng(u64);

impl TrafficRng {
    /// New stream seeded with `seed`.
    pub fn new(seed: u64) -> TrafficRng {
        TrafficRng(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `(0, 1]` — never zero, so `ln` is always finite.
    fn unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// Exponential inter-arrival gap with mean `1/rate` seconds, in ns.
    fn exp_gap_ns(&mut self, rate_per_sec: f64) -> u64 {
        (-self.unit().ln() / rate_per_sec * 1e9) as u64
    }
}

/// Shape of the arrival process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at the configured mean rate.
    Poisson,
    /// Arrivals come in bursts: `burst_len` requests arrive at
    /// `burst_factor ×` the mean rate, then the gap to the next burst
    /// is drawn at `rate / burst_factor` — the long-run mean rate stays
    /// near the configured one, but the instantaneous load whipsaws.
    Bursty {
        /// Requests per burst.
        burst_len: u32,
        /// How much faster than the mean rate a burst arrives (and how
        /// much slower the inter-burst gap is). Must be > 0.
        burst_factor: f64,
    },
}

/// One generated traffic schedule's parameters.
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// Tenant population size.
    pub tenants: usize,
    /// Zipf popularity exponent: tenant of popularity rank `r` (0-based)
    /// is requested proportionally to `1/(r+1)^s`. `0.0` = uniform.
    /// Rank order is itself a seeded permutation of the tenant ids, so
    /// tenant 0 is not always the hottest.
    pub zipf_s: f64,
    /// Mean request rate across the whole population, per second.
    pub rate_per_sec: f64,
    /// Total requests to generate.
    pub requests: usize,
    /// Arrival process shape.
    pub process: ArrivalProcess,
    /// The single seed every draw derives from.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> TrafficConfig {
        TrafficConfig {
            tenants: 1000,
            zipf_s: 1.1,
            rate_per_sec: 20.0,
            requests: 2000,
            process: ArrivalProcess::Poisson,
            seed: 0x5eed_f00d,
        }
    }
}

/// One request: arrival instant (virtual ns from scenario start) and
/// target tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual arrival time, ns from the start of the open-loop phase.
    pub at_ns: u64,
    /// Target tenant id, `0..tenants`.
    pub tenant: usize,
}

/// Zipf sampler over `n` ranks: cumulative weights + binary search.
struct Zipf {
    cumulative: Vec<f64>,
    /// rank → tenant id (seeded permutation).
    rank_to_tenant: Vec<usize>,
}

impl Zipf {
    fn new(n: usize, s: f64, rng: &mut TrafficRng) -> Zipf {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(s);
            cumulative.push(total);
        }
        // Fisher-Yates over the tenant ids so popularity rank is not
        // correlated with creation order (and thus initial placement).
        let mut rank_to_tenant: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            rank_to_tenant.swap(i, j);
        }
        Zipf {
            cumulative,
            rank_to_tenant,
        }
    }

    fn sample(&self, rng: &mut TrafficRng) -> usize {
        let total = *self.cumulative.last().expect("n >= 1");
        let u = rng.unit() * total;
        let rank = self.cumulative.partition_point(|&c| c < u);
        self.rank_to_tenant[rank.min(self.rank_to_tenant.len() - 1)]
    }
}

/// Expand `cfg` into its full arrival schedule, sorted by arrival time
/// (the generator emits in time order by construction).
pub fn generate(cfg: &TrafficConfig) -> Vec<Arrival> {
    assert!(cfg.tenants >= 1, "need at least one tenant");
    assert!(cfg.rate_per_sec > 0.0, "rate must be positive");
    let mut rng = TrafficRng::new(cfg.seed);
    let zipf = Zipf::new(cfg.tenants, cfg.zipf_s, &mut rng);
    let mut out = Vec::with_capacity(cfg.requests);
    let mut t = 0u64;
    for i in 0..cfg.requests {
        let gap = match cfg.process {
            ArrivalProcess::Poisson => rng.exp_gap_ns(cfg.rate_per_sec),
            ArrivalProcess::Bursty {
                burst_len,
                burst_factor,
            } => {
                assert!(burst_factor > 0.0, "burst_factor must be positive");
                if (i as u32).is_multiple_of(burst_len) && i > 0 {
                    rng.exp_gap_ns(cfg.rate_per_sec / burst_factor)
                } else {
                    rng.exp_gap_ns(cfg.rate_per_sec * burst_factor)
                }
            }
        };
        t += gap;
        out.push(Arrival {
            at_ns: t,
            tenant: zipf.sample(&mut rng),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_identically() {
        let cfg = TrafficConfig::default();
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = TrafficConfig {
            seed: cfg.seed + 1,
            ..cfg.clone()
        };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn arrivals_are_time_ordered() {
        let arrivals = generate(&TrafficConfig {
            process: ArrivalProcess::Bursty {
                burst_len: 8,
                burst_factor: 10.0,
            },
            ..TrafficConfig::default()
        });
        assert!(arrivals.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert!(arrivals.iter().all(|a| a.tenant < 1000));
    }

    /// Golden regression for the default schedule: the generator is
    /// deterministic, so we pin exact values instead of statistical
    /// bounds (no flakiness) and separately check those values have the
    /// statistical shape the config promises.
    #[test]
    fn default_schedule_matches_goldens() {
        let cfg = TrafficConfig::default();
        let arrivals = generate(&cfg);
        assert_eq!(arrivals.len(), 2000);

        // Poisson inter-arrival mean: 20 req/s ⇒ 50ms expected; the
        // seeded draw lands at 51.32ms (within 3%). Pinned exactly.
        let last = arrivals.last().unwrap().at_ns;
        assert_eq!(last, 102_648_371_216);
        let mean_gap = last / arrivals.len() as u64;
        assert_eq!(mean_gap, 51_324_185);
        let expected = (1e9 / cfg.rate_per_sec) as i64;
        assert!(
            (mean_gap as i64 - expected).abs() * 100 < expected * 3,
            "mean gap {mean_gap}ns drifted >3% from {expected}ns"
        );

        // Zipf rank-frequency: golden counts for the head of the
        // popularity distribution, and a shape check — each of the top
        // ranks beats the next, the head holds a healthy share, and the
        // tail is long (many tenants seen once or never).
        let mut counts = std::collections::HashMap::new();
        for a in &arrivals {
            *counts.entry(a.tenant).or_insert(0u64) += 1;
        }
        let mut ranked: Vec<(usize, u64)> = counts.into_iter().collect();
        ranked.sort_by_key(|&(t, c)| (std::cmp::Reverse(c), t));
        assert_eq!(ranked.len(), 425, "distinct tenants hit");
        let top: Vec<(usize, u64)> = ranked[..4].to_vec();
        assert_eq!(top, vec![(678, 319), (274, 185), (334, 105), (805, 67)]);
        assert!(top.windows(2).all(|w| w[0].1 > w[1].1));
        assert!(
            top[0].1 >= arrivals.len() as u64 / 10,
            "head share too small"
        );
    }

    /// Tiny schedule pinned arrival-by-arrival: catches any change to
    /// the draw order (gap first, then tenant) or the RNG stream.
    #[test]
    fn small_schedule_is_pinned_exactly() {
        let cfg = TrafficConfig {
            tenants: 16,
            zipf_s: 1.2,
            rate_per_sec: 50.0,
            requests: 12,
            process: ArrivalProcess::Poisson,
            seed: 0xabcd_1234,
        };
        let got: Vec<(u64, usize)> = generate(&cfg).iter().map(|a| (a.at_ns, a.tenant)).collect();
        assert_eq!(
            got,
            vec![
                (4_867_446, 11),
                (26_330_434, 10),
                (33_163_900, 11),
                (51_680_260, 2),
                (80_322_151, 9),
                (95_087_915, 11),
                (103_345_917, 2),
                (105_677_880, 11),
                (107_791_929, 5),
                (219_366_171, 2),
                (238_140_046, 5),
                (260_915_143, 11),
            ]
        );
    }

    #[test]
    fn uniform_zipf_spreads_load() {
        // s = 0 is uniform: with 4 tenants and 4000 requests every
        // tenant sees a healthy share.
        let arrivals = generate(&TrafficConfig {
            tenants: 4,
            zipf_s: 0.0,
            requests: 4000,
            ..TrafficConfig::default()
        });
        let mut counts = [0usize; 4];
        for a in &arrivals {
            counts[a.tenant] += 1;
        }
        for (t, c) in counts.iter().enumerate() {
            assert!((800..1200).contains(c), "tenant {t} got {c} of 4000");
        }
    }
}
