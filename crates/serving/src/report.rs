//! Deterministic serving-run reports.

use simkernel::obs::LatencySketch;

/// Percentiles of one start-kind's time-to-first-compute distribution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StartStats {
    /// Requests in the distribution.
    pub count: u64,
    /// Median, ns.
    pub p50_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// 99.9th percentile, ns.
    pub p999_ns: u64,
}

impl StartStats {
    /// Snapshot a sketch's percentiles.
    pub fn from_sketch(s: &LatencySketch) -> StartStats {
        StartStats {
            count: s.count(),
            p50_ns: s.p50(),
            p99_ns: s.p99(),
            p999_ns: s.p999(),
        }
    }
}

/// One tenant class's slice of the report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassReport {
    /// Class (workload) name.
    pub class: String,
    /// Cold-start time-to-first-compute.
    pub cold: StartStats,
    /// Warm-start time-to-first-compute.
    pub warm: StartStats,
    /// The class SLO, rendered, if one was configured.
    pub slo: Option<String>,
    /// Windows that breached the class SLO.
    pub breaches: usize,
}

/// Everything one serving run produced. `PartialEq` + [`summary`] make
/// determinism checks trivial: two runs of the same config must compare
/// equal and render byte-identically.
///
/// [`summary`]: ServingReport::summary
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServingReport {
    /// Eviction policy label.
    pub policy: String,
    /// Traffic seed the run replayed.
    pub seed: u64,
    /// Tenant population size.
    pub tenants: usize,
    /// Coprocessors behind the serving layer.
    pub devices: usize,
    /// Requests generated.
    pub requests: u64,
    /// Requests admitted (generated − rejected).
    pub admitted: u64,
    /// Requests rejected by the admission limit.
    pub rejected: u64,
    /// Cold-start (demand swap-in) time-to-first-compute.
    pub cold: StartStats,
    /// Warm-start (already resident) time-to-first-compute.
    pub warm: StartStats,
    /// Time-to-first-compute over *all* served requests (cold and warm
    /// merged) — the distribution a tenant actually experiences, and
    /// the one eviction policies compete on.
    pub overall: StartStats,
    /// Per-class breakdown, in class order.
    pub classes: Vec<ClassReport>,
    /// Rendered SLO breaches across every class, in class order.
    pub breaches: Vec<String>,
    /// Swap operations (outs + ins) the scheduler performed.
    pub swaps: u64,
    /// Peak concurrently-resident tenants (must never exceed
    /// `devices`).
    pub max_resident: usize,
    /// Snapstore restore-cache chunk hits during the run's swap-ins.
    pub restore_chunks_warm: u64,
    /// Snapstore chunks fetched cold during the run's swap-ins.
    pub restore_chunks_cold: u64,
    /// Transport bytes the restore cache avoided.
    pub restore_bytes_avoided: u64,
    /// Capture bytes that entered the store's chunk/digest pipeline
    /// across the run's swap-outs (the dirty portion).
    pub capture_dirty_bytes: u64,
    /// Capture bytes incremental capture replayed from prior snapshots
    /// without reading, chunking or digesting them.
    pub capture_clean_bytes: u64,
}

impl ServingReport {
    /// Fraction of served requests that started cold, in thousandths
    /// (integer, so comparisons stay exact).
    pub fn cold_fraction_milli(&self) -> u64 {
        let served = self.cold.count + self.warm.count;
        if served == 0 {
            return 0;
        }
        self.cold.count * 1000 / served
    }

    /// Byte-stable multi-line rendering — the `BENCH_serving`-style
    /// summary the determinism tests compare across runs and domain
    /// counts.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "serving policy={} seed={:#x} tenants={} devices={} requests={}\n",
            self.policy, self.seed, self.tenants, self.devices, self.requests
        ));
        out.push_str(&format!(
            "admitted={} rejected={} swaps={} max_resident={}\n",
            self.admitted, self.rejected, self.swaps, self.max_resident
        ));
        let line = |label: &str, s: &StartStats| {
            format!(
                "{label}: count={} p50={}ns p99={}ns p999={}ns\n",
                s.count, s.p50_ns, s.p99_ns, s.p999_ns
            )
        };
        out.push_str(&line("cold", &self.cold));
        out.push_str(&line("warm", &self.warm));
        out.push_str(&line("overall", &self.overall));
        out.push_str(&format!(
            "restore_cache: warm_chunks={} cold_chunks={} bytes_avoided={}\n",
            self.restore_chunks_warm, self.restore_chunks_cold, self.restore_bytes_avoided
        ));
        out.push_str(&format!(
            "capture: dirty_bytes={} clean_bytes={}\n",
            self.capture_dirty_bytes, self.capture_clean_bytes
        ));
        for c in &self.classes {
            out.push_str(&format!(
                "class {}: cold(count={} p99={}ns) warm(count={} p99={}ns) slo={} breaches={}\n",
                c.class,
                c.cold.count,
                c.cold.p99_ns,
                c.warm.count,
                c.warm.p99_ns,
                c.slo.as_deref().unwrap_or("-"),
                c.breaches
            ));
        }
        for b in &self.breaches {
            out.push_str(&format!("breach: {b}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ServingReport {
        ServingReport {
            policy: "lru".into(),
            seed: 0x5eed,
            tenants: 10,
            devices: 2,
            requests: 100,
            admitted: 98,
            rejected: 2,
            cold: StartStats {
                count: 30,
                p50_ns: 200_000_000,
                p99_ns: 900_000_000,
                p999_ns: 950_000_000,
            },
            warm: StartStats {
                count: 68,
                p50_ns: 3_000_000,
                p99_ns: 9_000_000,
                p999_ns: 9_500_000,
            },
            overall: StartStats {
                count: 98,
                p50_ns: 4_000_000,
                p99_ns: 890_000_000,
                p999_ns: 940_000_000,
            },
            classes: vec![ClassReport {
                class: "MC".into(),
                cold: StartStats::default(),
                warm: StartStats::default(),
                slo: Some("ttfc.p99 < 4000000000ns over 10000000000ns".into()),
                breaches: 1,
            }],
            breaches: vec!["tenant=MC ...".into()],
            swaps: 60,
            max_resident: 2,
            restore_chunks_warm: 5,
            restore_chunks_cold: 7,
            restore_bytes_avoided: 123,
            capture_dirty_bytes: 456,
            capture_clean_bytes: 789,
        }
    }

    #[test]
    fn summary_is_stable_and_complete() {
        let r = report();
        assert_eq!(r.summary(), r.summary());
        let s = r.summary();
        for needle in [
            "policy=lru",
            "seed=0x5eed",
            "admitted=98",
            "cold: count=30",
            "warm: count=68",
            "overall: count=98",
            "class MC:",
            "breach: tenant=MC",
            "max_resident=2",
            "capture: dirty_bytes=456 clean_bytes=789",
        ] {
            assert!(s.contains(needle), "summary missing `{needle}`:\n{s}");
        }
    }

    #[test]
    fn cold_fraction_is_integer_thousandths() {
        let r = report();
        assert_eq!(r.cold_fraction_milli(), 30 * 1000 / 98);
        let empty = ServingReport {
            cold: StartStats::default(),
            warm: StartStats::default(),
            overall: StartStats::default(),
            ..r
        };
        assert_eq!(empty.cold_fraction_milli(), 0);
    }
}
