//! Eviction policies: which resident tenant yields its device when a
//! cold request needs memory, and (mirrored onto the snapstore warm
//! cache) which restore-cache chunks survive.

use snapstore::CachePolicy;

/// How the serving layer picks a victim among resident tenants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the least-recently-requested tenant.
    #[default]
    Lru,
    /// Evict the least-requested tenant (ties fall back to LRU). Under
    /// Zipf skew this keeps the hot set resident even when a burst of
    /// one-off tenants sweeps through.
    Popularity,
    /// Evict the tenant whose eviction forfeits the least restore
    /// work: requests × swap-size estimate, ties falling back to LRU.
    CostAware,
}

impl EvictionPolicy {
    /// All policies, in bench/report order.
    pub const ALL: [EvictionPolicy; 3] = [
        EvictionPolicy::Lru,
        EvictionPolicy::Popularity,
        EvictionPolicy::CostAware,
    ];

    /// Stable label used in reports, bench rows and repro lines.
    pub fn label(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Popularity => "popularity",
            EvictionPolicy::CostAware => "cost",
        }
    }

    /// Parse a [`EvictionPolicy::label`] back.
    pub fn parse(s: &str) -> Option<EvictionPolicy> {
        EvictionPolicy::ALL.into_iter().find(|p| p.label() == s)
    }

    /// The snapstore warm-cache policy this serving policy pairs with.
    pub fn cache_policy(self) -> CachePolicy {
        match self {
            EvictionPolicy::Lru => CachePolicy::Lru,
            EvictionPolicy::Popularity => CachePolicy::Popularity,
            EvictionPolicy::CostAware => CachePolicy::CostAware,
        }
    }
}

/// One eviction candidate: a resident, unpinned tenant.
#[derive(Clone, Copy, Debug)]
pub struct VictimInfo {
    /// Tenant id.
    pub tenant: usize,
    /// Engine tick of the tenant's most recent request.
    pub last_tick: u64,
    /// Requests the tenant has received so far.
    pub requests: u64,
    /// Estimated bytes a future swap-in of this tenant would move.
    pub swap_cost: u64,
}

/// Pick the victim: the candidate with the smallest policy score. Ticks
/// are unique, so the choice is total and deterministic.
pub fn choose_victim(policy: EvictionPolicy, candidates: &[VictimInfo]) -> Option<usize> {
    candidates
        .iter()
        .min_by_key(|c| match policy {
            EvictionPolicy::Lru => (0, c.last_tick),
            EvictionPolicy::Popularity => (c.requests as u128, c.last_tick),
            EvictionPolicy::CostAware => (c.requests as u128 * c.swap_cost as u128, c.last_tick),
        })
        .map(|c| c.tenant)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_round_trips() {
        for p in EvictionPolicy::ALL {
            assert_eq!(EvictionPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(EvictionPolicy::parse("nope"), None);
    }

    #[test]
    fn policies_rank_victims_differently() {
        let candidates = [
            // Old but hot and heavy.
            VictimInfo {
                tenant: 0,
                last_tick: 1,
                requests: 50,
                swap_cost: 100,
            },
            // Recent one-hit-wonder, heavy image.
            VictimInfo {
                tenant: 1,
                last_tick: 9,
                requests: 1,
                swap_cost: 1000,
            },
            // Middling recency, few requests, tiny image.
            VictimInfo {
                tenant: 2,
                last_tick: 5,
                requests: 3,
                swap_cost: 10,
            },
        ];
        assert_eq!(choose_victim(EvictionPolicy::Lru, &candidates), Some(0));
        assert_eq!(
            choose_victim(EvictionPolicy::Popularity, &candidates),
            Some(1)
        );
        assert_eq!(
            choose_victim(EvictionPolicy::CostAware, &candidates),
            Some(2)
        );
        assert_eq!(choose_victim(EvictionPolicy::Lru, &[]), None);
    }
}
