//! Fault tolerance for an MPI offload application: a 4-rank NAS-style
//! multi-zone run with coordinated checkpointing, a node failure, and a
//! cluster-wide restart — the paper's §5 "Checkpoint and restart for MPI"
//! scenario on the 4-node cluster of §7.
//!
//! Run with: `cargo run --release --example mpi_checkpoint`

use snapify_repro::prelude::*;
use snapify_repro::workloads::nas::{nas_by_name, run_mz_cr_experiment};

fn main() {
    // Scale LU-MZ down so the example runs in a couple of seconds while
    // keeping the class-C structure (zones over ranks, halo exchange,
    // coordinated CR).
    let mut mz = nas_by_name("LU-MZ").unwrap();
    mz.total_host_bytes /= 8;
    mz.total_device_bytes /= 8;
    mz.total_store_bytes /= 8;
    mz.halo_bytes /= 8;
    mz.iterations = 6;
    mz.flops_per_iter /= 20.0;

    let result = Kernel::run_root(move || run_mz_cr_experiment(&mz, 4, 2).unwrap());

    println!("LU-MZ (scaled class C) on 4 ranks, one Xeon Phi per node");
    println!("---------------------------------------------------------");
    println!("coordinated checkpoint : {}", result.checkpoint_time);
    println!("coordinated restart    : {}", result.restart_time);
    println!(
        "per-rank snapshot      : {:.1} MiB (host {:.1} + device {:.1} + store {:.1})",
        result.per_rank_checkpoint_bytes as f64 / (1 << 20) as f64,
        result.reports[0].host_snapshot_bytes as f64 / (1 << 20) as f64,
        result.reports[0].device_snapshot_bytes as f64 / (1 << 20) as f64,
        result.reports[0].local_store_bytes as f64 / (1 << 20) as f64,
    );
    for (r, rep) in result.reports.iter().enumerate() {
        println!(
            "rank {r}: pause {}, host snap {}, device snap {}",
            rep.pause, rep.host_snapshot, rep.device_capture
        );
    }
    println!();
    println!("after the injected failure, all 4 ranks restarted from the snapshot,");
    println!("resumed at the checkpointed iteration, and completed a further solver");
    println!("iteration (verified inside the experiment).");
}
