//! Multi-tenancy by process swapping: a toy job scheduler time-shares one
//! Xeon Phi between two memory-hungry offload applications that *cannot*
//! fit on the card together — the COSMIC-style use case the paper's §1
//! motivates ("the size of Xeon Phi's physical memory puts a hard limit on
//! the number of processes that can concurrently run").
//!
//! Run with: `cargo run --release --example scheduler_swap`

use snapify_repro::prelude::*;
use snapify_repro::snapify::{Command, SnapifyCli};

fn big_app_registry() -> FunctionRegistry {
    let registry = FunctionRegistry::new();
    // Each app holds ~3.2 GiB of device memory: two of them cannot share
    // an 8 GiB card with room to compute.
    registry.register(
        DeviceBinary::new("bigjob.so", 4 * MB, 200 * MB).simple_function("work", |ctx| {
            ctx.compute(2e10, 240); // ~20 ms of parallel work
            let n = ctx.buffer_len(0);
            ctx.write_buffer(0, Payload::synthetic(0xB16, n));
            Vec::new()
        }),
    );
    registry
}

fn main() {
    Kernel::run_root(|| {
        let world = SnapifyWorld::boot(big_app_registry());
        let device_mem = world.server().device(0).mem().clone();
        let cli = SnapifyCli::new();

        // Job A arrives and fills most of the card.
        let host_a = world.coi().create_host_process("job-a");
        let job_a = world.coi().create_process(&host_a, 0, "bigjob.so").unwrap();
        let buf_a = job_a.create_buffer(3 * GB).unwrap();
        job_a
            .buffer_write(&buf_a, Payload::synthetic(0xA, 3 * GB))
            .unwrap();
        cli.register(&job_a);
        println!(
            "[{}] job A running on mic0; device memory used: {:.1} GiB",
            now(),
            device_mem.used() as f64 / GB as f64
        );

        // Job B arrives. It needs ~3.2 GiB too — it cannot fit while A's
        // buffers are resident, so the scheduler swaps A out.
        println!(
            "[{}] job B arrives; scheduler swaps A out to host storage",
            now()
        );
        cli.submit(
            host_a.pid().0,
            Command::SwapOut {
                path: "/swap/job-a".into(),
            },
        )
        .unwrap();
        println!(
            "[{}] A swapped out; device memory used: {:.2} GiB",
            now(),
            device_mem.used() as f64 / GB as f64
        );
        assert!(device_mem.used() < GB / 2);

        let host_b = world.coi().create_host_process("job-b");
        let job_b = world.coi().create_process(&host_b, 0, "bigjob.so").unwrap();
        let buf_b = job_b.create_buffer(3 * GB).unwrap();
        job_b
            .buffer_write(&buf_b, Payload::synthetic(0xB, 3 * GB))
            .unwrap();
        job_b.run_sync("work", Vec::new(), &[&buf_b]).unwrap();
        println!("[{}] job B finished its offload region", now());
        job_b.destroy().unwrap();

        // B is done — swap A back in; it resumes exactly where it was.
        println!("[{}] scheduler swaps A back in", now());
        cli.submit(host_a.pid().0, Command::SwapIn { device: 0 })
            .unwrap();
        job_a.run_sync("work", Vec::new(), &[&buf_a]).unwrap();
        println!(
            "[{}] job A completed after swap-in; all buffers intact",
            now()
        );
        assert_eq!(
            job_a.buffer_read(&buf_a).unwrap().digest(),
            Payload::synthetic(0xB16, 3 * GB).digest()
        );
        job_a.destroy().unwrap();
        println!(
            "[{}] done: one card served two 3 GiB jobs sequentially",
            now()
        );
    });
}
