//! Quickstart: build an offload application, take a consistent snapshot,
//! checkpoint it, kill it, and restart it — the paper's headline flow.
//!
//! Run with: `cargo run --release --example quickstart`

use snapify_repro::prelude::*;

fn main() {
    Kernel::run_root(|| {
        // 1. A "device binary": one offload function that squares every
        //    byte of its buffer (think of it as the compiled #pragma
        //    offload region).
        let registry = FunctionRegistry::new();
        registry.register(
            DeviceBinary::new("square.so", 2 * MB, 32 * MB).simple_function("square", |ctx| {
                let mut v = ctx.read_buffer(0).to_bytes();
                for b in v.iter_mut() {
                    *b = b.wrapping_mul(*b);
                }
                ctx.compute(5e9, 240); // the parallel part, on 240 threads
                ctx.write_buffer(0, Payload::bytes(v));
                Vec::new()
            }),
        );

        // 2. Boot the simulated Xeon Phi server (2 coprocessors) with COI,
        //    the Snapify extensions, and Snapify-IO.
        let world = SnapifyWorld::boot(registry);
        println!("{}", world.server().params().table2());

        // 3. The offload application: host process + offload process +
        //    one COI buffer.
        let host = world.coi().create_host_process("quickstart");
        let proc = world.coi().create_process(&host, 0, "square.so").unwrap();
        let buf = proc.create_buffer(8).unwrap();
        proc.buffer_write(&buf, Payload::bytes(vec![2, 3, 4, 5, 6, 7, 8, 9]))
            .unwrap();
        proc.run_sync("square", Vec::new(), &[&buf]).unwrap();
        println!(
            "[{}] after offload:   {:?}",
            now(),
            proc.buffer_read(&buf).unwrap().to_bytes()
        );

        // 4. Checkpoint the whole application (host + offload process,
        //    concurrently, after Snapify's pause drained every channel).
        let (_snap, report) =
            checkpoint_application(&world, &proc, b"phase=after-first-offload", "/snap/quick")
                .unwrap();
        println!(
            "[{}] checkpoint done: pause {}, host snapshot {} ({}B), device snapshot {} ({}B)",
            now(),
            report.pause,
            report.host_snapshot,
            report.host_snapshot_bytes,
            report.device_capture,
            report.device_snapshot_bytes,
        );

        // 5. The application keeps computing after the checkpoint...
        proc.run_sync("square", Vec::new(), &[&buf]).unwrap();

        // 6. ...then the machine "fails".
        proc.destroy().unwrap();
        host.exit();
        println!("[{}] application killed", now());

        // 7. Restart from the snapshot — on the *other* coprocessor.
        let restarted = restart_application(&world, "/snap/quick", "square.so", 1).unwrap();
        println!(
            "[{}] restarted on mic1 in {} (host {}, offload restore {})",
            now(),
            restarted.report.total,
            restarted.report.host_restart,
            restarted.report.offload_restore,
        );
        assert_eq!(restarted.host_state, b"phase=after-first-offload");

        // The buffer holds the checkpoint-time content (squared once, not
        // twice): the snapshot really was a consistent cut.
        let bufs = restarted.handle.buffers();
        let restored = restarted.handle.buffer_read(&bufs[0]).unwrap().to_bytes();
        println!("[{}] restored buffer: {restored:?}", now());
        assert_eq!(restored, vec![4, 9, 16, 25, 36, 49, 64, 81]);

        // And it still computes.
        restarted
            .handle
            .run_sync("square", Vec::new(), &[&bufs[0]])
            .unwrap();
        restarted.handle.destroy().unwrap();
        println!("[{}] done", now());
    });
}
