//! Proactive migration: a fault predictor flags a coprocessor as
//! failing, and the scheduler migrates the offload process to a healthy
//! card *mid-kernel* — the motivating scenario of §1 ("by using fault
//! prediction methods, it is possible to avoid imminent coprocessor
//! failures by proactively migrating processes").
//!
//! Run with: `cargo run --release --example migration`

use snapify_repro::prelude::*;
use std::sync::Arc;

use snapify_repro::coi_sim::{OffloadCtx, OffloadFn, StepOutcome};

/// A long-running iterative solver: 200 steps of ~5 ms each, updating a
/// private residual and the solution buffer.
struct Solver;

impl OffloadFn for Solver {
    fn step(&self, ctx: &mut OffloadCtx<'_>, cursor: u64) -> StepOutcome {
        ctx.compute(5e9, 240);
        let residual = 1.0f64 / (cursor + 1) as f64;
        ctx.set_private("residual", Payload::bytes(residual.to_le_bytes().to_vec()));
        if cursor + 1 >= 200 {
            let n = ctx.buffer_len(0);
            ctx.write_buffer(0, Payload::synthetic(0x501_7ED, n));
            StepOutcome::Done(residual.to_le_bytes().to_vec())
        } else {
            StepOutcome::Yield
        }
    }
}

fn main() {
    Kernel::run_root(|| {
        let registry = FunctionRegistry::new();
        registry.register(
            DeviceBinary::new("solver.so", 4 * MB, 256 * MB).function("solve", Arc::new(Solver)),
        );
        let world = SnapifyWorld::boot(registry);

        let host = world.coi().create_host_process("solver-app");
        let proc = world.coi().create_process(&host, 0, "solver.so").unwrap();
        let buf = proc.create_buffer(64 * MB).unwrap();
        proc.buffer_write(&buf, Payload::synthetic(1, 64 * MB))
            .unwrap();

        // Kick off the ~1s solve.
        let run = proc.run("solve", Vec::new(), &[&buf]).unwrap();
        println!("[{}] solver started on mic0", now());

        // The "fault predictor": after 300 ms it predicts mic0 will fail.
        sleep(SimDuration::from_millis(300));
        println!(
            "[{}] fault predictor: mic0 degrading — migrating to mic1",
            now()
        );

        let t0 = now();
        snapify_migrate(&proc, 1).unwrap();
        println!(
            "[{}] migration complete in {} (process now on mic{})",
            now(),
            now() - t0,
            proc.device()
        );
        assert_eq!(proc.device(), 1);
        assert_eq!(world.coi().daemon(0).live_processes(), 0);

        // mic0 "fails" — too late to hurt us.
        println!("[{}] mic0 failed (no effect: nothing runs there)", now());

        // The solve finishes on the healthy card with the right answer.
        let residual = f64::from_le_bytes(run.wait().unwrap().try_into().unwrap());
        println!("[{}] solver finished, final residual {residual:.6}", now());
        assert!((residual - 1.0 / 200.0).abs() < 1e-12);
        proc.destroy().unwrap();
    });
}
