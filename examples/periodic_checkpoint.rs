//! Periodic checkpointing for fault tolerance: the classic HPC pattern
//! the paper's introduction motivates. An offload application runs with a
//! checkpoint every N milliseconds of virtual time; a failure strikes at
//! an arbitrary point; the job restarts from the most recent complete
//! snapshot and loses only the work since then.
//!
//! Run with: `cargo run --release --example periodic_checkpoint`

use snapify_repro::coi_sim::FunctionRegistry;
use snapify_repro::prelude::*;
use snapify_repro::workloads::{by_name, register_suite, WorkloadRun};
use std::sync::Arc;

fn main() {
    Kernel::run_root(|| {
        // The JAC workload, scaled to run for roughly a second.
        let spec = by_name("JAC").unwrap().scaled(16, 1);
        let registry = FunctionRegistry::new();
        register_suite(&registry, std::slice::from_ref(&spec));
        let world = SnapifyWorld::boot(registry);

        let run = Arc::new(WorkloadRun::launch(world.coi(), &spec, 0).unwrap());
        let handle = run.handle().clone();
        let host = run.host_proc().clone();

        // Drive the solver on its own thread.
        let driver = {
            let r = Arc::clone(&run);
            host.spawn_thread("driver", move || r.run_to_completion())
        };

        // Checkpoint every 120 ms of virtual time until the "failure".
        let mut checkpoints = Vec::new();
        for i in 0..4 {
            sleep(SimDuration::from_millis(120));
            let path = format!("/ckpt/periodic/{i}");
            let (_snap, report) =
                checkpoint_application(&world, &handle, &run.host_state(), &path).unwrap();
            println!(
                "[{}] checkpoint #{i}: total {}, device snapshot {}",
                now(),
                report.total,
                report.device_capture
            );
            checkpoints.push(path);
        }

        // Disaster: the whole application dies mid-run.
        println!(
            "[{}] !!! injected failure: killing host and offload process",
            now()
        );
        let rt = world
            .coi()
            .daemon(handle.device())
            .runtime(handle.pid())
            .unwrap();
        rt.terminate();
        host.exit();
        drop(driver); // the driver thread errors out with Closed; that's the crash

        // Recovery: restart from the last completed checkpoint.
        let last = checkpoints.last().unwrap();
        println!("[{}] restarting from {last}", now());
        let restarted = restart_application(&world, last, &spec.binary_name(), 1).unwrap();
        let resumed_iter = WorkloadRun::parse_host_state(&restarted.host_state);
        println!(
            "[{}] restart done in {} — resuming at iteration {resumed_iter}/{}",
            now(),
            restarted.report.total,
            spec.iterations
        );
        let resumed = WorkloadRun::resume_after_restart(
            &spec,
            &restarted.handle,
            &restarted.host_proc,
            &restarted.host_state,
        );
        let result = resumed.run_to_completion().unwrap();
        assert!(
            result.verified,
            "restarted run must produce the correct output"
        );
        println!(
            "[{}] job completed and verified; only {} iterations were re-executed",
            now(),
            result.iterations_run
        );
        resumed.destroy().unwrap();
    });
}
