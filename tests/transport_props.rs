//! Property tests of the snapshot transports: every method (Snapify-IO,
//! the three NFS variants, scp, local) must deliver arbitrary byte
//! streams losslessly regardless of size, chunking, or direction — a
//! checkpointer cannot tolerate a transport that drops, reorders, or
//! duplicates a single chunk.

use proptest::prelude::*;
use snapify_repro::phi_platform::{NodeId, Payload, PhiServer, PlatformParams};
use snapify_repro::simkernel::{Kernel, SchedPolicy};
use snapify_repro::simproc::SnapshotStorage;
use snapify_repro::snapify_io::{LocalStorage, Nfs, NfsConfig, NfsMode, Scp, ScpConfig, SnapifyIo};

/// Scheduler seeds for the randomized-policy matrix. The quick suite
/// runs the first two; `SIMCHAOS_SCHED_SWEEP=1` runs all eight.
const SCHED_SEEDS: [u64; 8] = [1, 7, 42, 99, 2024, 0x5eed, 0xdead_beef, 0xfeed_f00d];

fn sched_matrix() -> &'static [u64] {
    if std::env::var("SIMCHAOS_SCHED_SWEEP").is_ok_and(|v| v == "1") {
        &SCHED_SEEDS
    } else {
        &SCHED_SEEDS[..2]
    }
}

fn roundtrip_with(
    policy: SchedPolicy,
    method_idx: usize,
    size: u64,
    write_chunk: u64,
    read_chunk: u64,
) {
    Kernel::run_root_with(policy, move || {
        let server = PhiServer::new(PlatformParams::default());
        let methods: Vec<Box<dyn SnapshotStorage>> = vec![
            Box::new(SnapifyIo::new_default(&server)),
            Box::new(Nfs::new(&server, NfsConfig::default(), NfsMode::Plain)),
            Box::new(Nfs::new(
                &server,
                NfsConfig::default(),
                NfsMode::BufferedKernel,
            )),
            Box::new(Nfs::new(
                &server,
                NfsConfig::default(),
                NfsMode::BufferedUser,
            )),
            Box::new(Scp::new(&server, ScpConfig::default())),
            Box::new(LocalStorage::new(&server)),
        ];
        let method = &methods[method_idx];
        let data = Payload::synthetic(size ^ 0x5eed, size);

        let mut sink = method.sink(NodeId::device(0), "/prop/file").unwrap();
        for chunk in data.chunks(write_chunk) {
            sink.write(chunk).unwrap();
        }
        sink.close().unwrap();

        let mut src = method.source(NodeId::device(0), "/prop/file").unwrap();
        let mut out = Payload::empty();
        while let Some(c) = src.read(read_chunk).unwrap() {
            out.append(c);
        }
        assert_eq!(out.len(), data.len(), "length mismatch");
        assert_eq!(out.digest(), data.digest(), "content mismatch");
    });
}

fn roundtrip(method_idx: usize, size: u64, write_chunk: u64, read_chunk: u64) {
    roundtrip_with(SchedPolicy::Fifo, method_idx, size, write_chunk, read_chunk);
}

/// Transport losslessness is scheduler-independent: the same round
/// trips hold when wakeup ties are broken by a seeded RNG. Every
/// method is exercised under every seed in the matrix (two seeds in
/// the quick suite; `SIMCHAOS_SCHED_SWEEP=1` widens it to eight).
#[test]
fn transports_lossless_under_random_schedules() {
    for &seed in sched_matrix() {
        for method in 0..6 {
            roundtrip_with(
                SchedPolicy::Random(seed),
                method,
                1 + (seed ^ method as u64) % 3_000_000,
                1 + (seed.rotate_left(method as u32)) % 1_000_000,
                1 + (seed >> (method as u32 + 1)) % 1_000_000,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn any_transport_any_chunking_is_lossless(
        method in 0usize..6,
        size in 1u64..6_000_000,
        write_chunk in 1u64..3_000_000,
        read_chunk in 1u64..3_000_000,
    ) {
        roundtrip(method, size, write_chunk, read_chunk);
    }

    /// Real byte content (not synthetic extents) also survives, byte for
    /// byte.
    #[test]
    fn real_bytes_survive_exactly(
        method in 0usize..6,
        data in prop::collection::vec(any::<u8>(), 1..4096),
    ) {
        Kernel::run_root(move || {
            let server = PhiServer::new(PlatformParams::default());
            let methods: Vec<Box<dyn SnapshotStorage>> = vec![
                Box::new(SnapifyIo::new_default(&server)),
                Box::new(Nfs::new(&server, NfsConfig::default(), NfsMode::Plain)),
                Box::new(Nfs::new(&server, NfsConfig::default(), NfsMode::BufferedKernel)),
                Box::new(Nfs::new(&server, NfsConfig::default(), NfsMode::BufferedUser)),
                Box::new(Scp::new(&server, ScpConfig::default())),
                Box::new(LocalStorage::new(&server)),
            ];
            let method = &methods[method];
            let payload = Payload::bytes(data.clone());
            let mut sink = method.sink(NodeId::device(1), "/prop/bytes").unwrap();
            sink.write(payload).unwrap();
            sink.close().unwrap();
            let mut src = method.source(NodeId::device(1), "/prop/bytes").unwrap();
            let mut out = Vec::new();
            while let Some(c) = src.read(257).unwrap() {
                out.extend_from_slice(&c.to_bytes());
            }
            assert_eq!(out, data);
        });
    }

    /// BLCR images survive every transport: checkpoint a process through
    /// the method, restart through the method, compare memory digests.
    #[test]
    fn blcr_image_roundtrips_every_transport(
        method in 0usize..6,
        region_kb in 1u64..2048,
    ) {
        Kernel::run_root(move || {
            use snapify_repro::blcr_sim::{checkpoint, restart, BlcrConfig};
            use snapify_repro::simproc::{PidAllocator, SimProcess};
            let server = PhiServer::new(PlatformParams::default());
            let methods: Vec<Box<dyn SnapshotStorage>> = vec![
                Box::new(SnapifyIo::new_default(&server)),
                Box::new(Nfs::new(&server, NfsConfig::default(), NfsMode::Plain)),
                Box::new(Nfs::new(&server, NfsConfig::default(), NfsMode::BufferedKernel)),
                Box::new(Nfs::new(&server, NfsConfig::default(), NfsMode::BufferedUser)),
                Box::new(Scp::new(&server, ScpConfig::default())),
                Box::new(LocalStorage::new(&server)),
            ];
            let method = &methods[method];
            let node = server.device(0).clone();
            let pids = PidAllocator::new();
            let cfg = BlcrConfig::default();

            let proc = SimProcess::new(pids.alloc(), "p", &node);
            proc.memory()
                .map_region("data", Payload::synthetic(region_kb, region_kb << 10))
                .unwrap();
            let digest = proc.memory().digest();

            let mut sink = method.sink(node.id(), "/prop/img").unwrap();
            checkpoint(&cfg, &proc, b"state", sink.as_mut()).unwrap();
            proc.exit();

            let mut src = method.source(node.id(), "/prop/img").unwrap();
            let restored = restart(&cfg, &node, &pids, src.as_mut()).unwrap();
            assert_eq!(restored.proc.memory().digest(), digest);
            assert_eq!(restored.runtime_state, b"state");
        });
    }
}
