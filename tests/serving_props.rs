//! Serving-layer properties: under both Fifo and `SchedPolicy::Random`
//! scheduling, for every eviction policy,
//!
//! * every admitted request eventually reaches first-compute (nothing
//!   is lost in the miss queue or stuck behind an eviction), and
//! * resident tenants never exceed device capacity (the claim flags
//!   and the scheduler's own residency map agree).
//!
//! Small populations keep each run fast; the scheduling policy matrix
//! is what makes these properties, not the scale — the 1k-tenant shape
//! is covered by `cargo bench --bench serving`.

use serving::{
    run_scenario, ArrivalProcess, EvictionPolicy, ServingConfig, ServingReport, TrafficConfig,
};
use simkernel::{Kernel, SchedPolicy};

fn config(policy: EvictionPolicy, process: ArrivalProcess) -> ServingConfig {
    ServingConfig {
        devices: 2,
        swap_workers: 2,
        policy,
        traffic: TrafficConfig {
            tenants: 8,
            zipf_s: 1.2,
            rate_per_sec: 15.0,
            requests: 80,
            process,
            ..TrafficConfig::default()
        },
        ..ServingConfig::default()
    }
}

fn check(sched: SchedPolicy, cfg: ServingConfig) -> ServingReport {
    let label = format!("{:?}/{}", sched, cfg.policy.label());
    let report = Kernel::run_root_with(sched, move || run_scenario(&cfg));
    assert_eq!(
        report.cold.count + report.warm.count,
        report.admitted,
        "{label}: every admitted request must reach first-compute\n{}",
        report.summary()
    );
    assert_eq!(report.overall.count, report.admitted, "{label}");
    assert!(
        report.max_resident <= report.devices,
        "{label}: {} resident on {} devices",
        report.max_resident,
        report.devices
    );
    report
}

#[test]
fn fifo_serves_every_admitted_request_within_capacity() {
    for policy in EvictionPolicy::ALL {
        for process in [
            ArrivalProcess::Poisson,
            ArrivalProcess::Bursty {
                burst_len: 6,
                burst_factor: 5.0,
            },
        ] {
            let report = check(SchedPolicy::Fifo, config(policy, process));
            assert_eq!(report.rejected, 0, "no admission limit configured");
        }
    }
}

#[test]
fn random_schedules_serve_every_admitted_request_within_capacity() {
    for policy in EvictionPolicy::ALL {
        for seed in [1u64, 7, 42] {
            let report = check(
                SchedPolicy::Random(seed),
                config(policy, ArrivalProcess::Poisson),
            );
            assert_eq!(report.rejected, 0, "no admission limit configured");
        }
    }
}

/// The properties hold with an admission limit too: rejected requests
/// are counted (never silently dropped) and everything admitted is
/// still served, under both scheduling policies.
#[test]
fn admission_limited_overload_still_serves_everything_admitted() {
    for sched in [SchedPolicy::Fifo, SchedPolicy::Random(9)] {
        let mut cfg = config(EvictionPolicy::Lru, ArrivalProcess::Poisson);
        cfg.admission_limit = Some(2);
        cfg.swap_workers = 1;
        cfg.traffic.zipf_s = 0.0;
        cfg.traffic.tenants = 16;
        cfg.traffic.rate_per_sec = 120.0;
        let report = check(sched, cfg);
        assert!(
            report.rejected > 0,
            "uniform overload must trip the limiter\n{}",
            report.summary()
        );
        assert_eq!(report.admitted + report.rejected, report.requests);
    }
}
