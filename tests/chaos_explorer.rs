//! The seeded chaos explorer (`simchaos`): sweep many seeds, each
//! expanding into a random snapshot operation at a random virtual time
//! under a random (but contract-respecting) fault schedule, executed
//! under `SchedPolicy::Random(seed)`.
//!
//! A failing case prints a one-line repro:
//!
//! ```text
//! SIMCHAOS_SEED=<n> SIMCHAOS_FAULTS='<schedule>' [SIMCHAOS_NO_RETRY=1]
//! ```
//!
//! Export those variables and run `cargo test --test chaos_explorer
//! replay_case_from_env -- --nocapture` to replay the *byte-identical*
//! execution. Failing repro lines are also appended to
//! `target/simchaos-repro.txt` so CI can publish them as an artifact.
//!
//! Sweep width: 4 blocks × `SIMCHAOS_CASES_PER_BLOCK` (default 50, so
//! 200 cases). CI's `chaos-smoke` job sets it to 4 for a 16-case quick
//! matrix.

use simchaos::{find_seed, run_case, ChaosCase, ChaosOp};
use std::io::Write as _;

/// Stable base so sweep membership only changes when deliberately bumped.
const BASE_SEED: u64 = 0x5eed_c000;

fn cases_per_block() -> u64 {
    std::env::var("SIMCHAOS_CASES_PER_BLOCK")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50)
}

/// Record a failing repro line where CI can pick it up as an artifact.
fn record_repro(lines: &[String]) {
    let dir = std::path::Path::new("target");
    if !dir.is_dir() {
        return;
    }
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("simchaos-repro.txt"))
    {
        for line in lines {
            let _ = writeln!(f, "{line}");
        }
    }
}

fn sweep_cases(n: u64, expand: impl Fn(u64) -> ChaosCase) {
    let mut repro_lines = Vec::new();
    let mut failures = Vec::new();
    let mut violators = Vec::new();
    for seed in 0..n {
        let case = expand(seed);
        let outcome = run_case(&case);
        // SLO violations don't fail the sweep (the consistency contract
        // held) but the sweep reports exactly which seeds blew the
        // latency budget, with the breached windows.
        for breach in &outcome.slo_breaches {
            violators.push(format!("seed {}: {breach}", case.seed));
        }
        if let Some(why) = outcome.failure {
            repro_lines.push(format!("{} # {case}: {why}", case.repro_line()));
            let tail = outcome.flight_tail.unwrap_or_default();
            failures.push(format!("{} # {case}: {why}\n{tail}", case.repro_line()));
        }
    }
    if !violators.is_empty() {
        println!(
            "SLO violations in this sweep:\n  {}",
            violators.join("\n  ")
        );
    }
    if !failures.is_empty() {
        record_repro(&repro_lines);
        panic!(
            "{} of {} chaos cases failed; repro lines:\n{}",
            failures.len(),
            n,
            failures.join("\n")
        );
    }
}

fn sweep_block(block: u64) {
    let base = BASE_SEED + block * 1000;
    sweep_cases(cases_per_block(), |i| ChaosCase::from_seed(base + i));
}

#[test]
fn chaos_sweep_block_a() {
    sweep_block(0);
}

#[test]
fn chaos_sweep_block_b() {
    sweep_block(1);
}

#[test]
fn chaos_sweep_block_c() {
    sweep_block(2);
}

#[test]
fn chaos_sweep_block_d() {
    sweep_block(3);
}

/// Swap-rotate workloads: two dedup-backed tenants time-share one card
/// (park / rotate ×3 / retire) under generated bus-fault schedules and
/// random scheduler seeds. Exercises the scheduler's claim machinery
/// and the warm restore fast path under chaos; repro lines carry
/// `SIMCHAOS_OP=swap-rotate` so `replay_case_from_env` rebuilds the
/// pinned op.
#[test]
fn chaos_sweep_block_swap_rotate() {
    let base = BASE_SEED + 4000;
    sweep_cases(cases_per_block(), |i| {
        ChaosCase::swap_rotate_from_seed(base + i)
    });
}

/// FaaS-style serving under chaos: 16 seeds (fewer under a tighter
/// `SIMCHAOS_CASES_PER_BLOCK`, as in CI smoke), each an open-loop
/// multi-tenant serving run — seed-drawn eviction policy, arrival
/// process, and Zipf skew — under generated bus faults and a random
/// scheduler. The consistency contract (every admitted request reaches
/// first-compute, residency ≤ devices) must hold for every seed; seeds
/// that merely blow the default time-to-first-compute SLO are reported
/// separately by `sweep_cases`, not failed. Repro lines carry
/// `SIMCHAOS_OP=serve`.
#[test]
fn chaos_sweep_block_serve() {
    let base = BASE_SEED + 6000;
    let n = cases_per_block().min(16);
    sweep_cases(n, |i| {
        let case = ChaosCase::serve_from_seed(base + i);
        assert!(
            case.repro_line().contains("SIMCHAOS_OP=serve"),
            "pinned serve cases must replay with their op: {}",
            case.repro_line()
        );
        case
    });
}

/// The replay contract holds for the pinned serve op too: verdict,
/// trace fingerprint, fault firings, and the SLO breach list all replay
/// byte-identically.
#[test]
fn serve_cases_replay_byte_identical() {
    let case = ChaosCase::serve_from_seed(BASE_SEED + 6000);
    let first = run_case(&case);
    let second = run_case(&case);
    assert!(first.ok(), "{:?}", first.failure);
    assert_eq!(first.failure, second.failure);
    assert_eq!(first.trace_len, second.trace_len);
    assert_eq!(first.trace_digest, second.trace_digest);
    assert_eq!(first.faults_fired, second.faults_fired);
    assert_eq!(first.slo_breaches, second.slo_breaches);
    assert!(first.trace_len > 0, "tracing must actually be on");
}

/// The multi-domain sweep: 16 seeds (fewer if `SIMCHAOS_CASES_PER_BLOCK`
/// is tighter, as in CI smoke) whose cases run on a 4-domain kernel —
/// the case body in domain 0, peers in domains 1..4 exchanging
/// cluster-link pings through the conservative sync engine. Repro lines
/// gain `SIMCHAOS_DOMAINS=4`, and `replay_case_from_env` honors it.
#[test]
fn chaos_sweep_multidomain() {
    let base = BASE_SEED + 5000;
    let n = cases_per_block().min(16);
    sweep_cases(n, |i| {
        let mut case = ChaosCase::from_seed(base + i);
        case.domains = 4;
        assert!(
            case.repro_line().contains("SIMCHAOS_DOMAINS=4"),
            "multi-domain cases must replay with their domain count: {}",
            case.repro_line()
        );
        case
    });
}

/// The replay contract extends to multi-domain cases: the same 4-domain
/// case executed twice yields the identical merged trace fingerprint —
/// parallel domain execution must never leak wall-clock interleaving
/// into simulation state.
#[test]
fn multidomain_cases_replay_byte_identical() {
    let seeds = [
        find_seed(BASE_SEED + 5000, |c| {
            !c.op.is_soak() && !c.faults.is_empty()
        }),
        find_seed(BASE_SEED + 5000, |c| c.op.is_soak()),
    ];
    for seed in seeds {
        let mut case = ChaosCase::from_seed(seed);
        case.domains = 4;
        let first = run_case(&case);
        let second = run_case(&case);
        assert!(first.ok(), "{case}: {:?}", first.failure);
        assert_eq!(first.failure, second.failure, "{case}: verdict must replay");
        assert_eq!(
            (first.trace_len, first.trace_digest),
            (second.trace_len, second.trace_digest),
            "{case}: 4-domain fingerprint must replay byte-identically"
        );
        assert_eq!(first.faults_fired, second.faults_fired);
        assert!(first.trace_len > 0, "tracing must actually be on");
    }
}

/// The replay contract holds for the pinned swap-rotate op too.
#[test]
fn swap_rotate_cases_replay_byte_identical() {
    let case = ChaosCase::swap_rotate_from_seed(BASE_SEED + 4000);
    let first = run_case(&case);
    let second = run_case(&case);
    assert!(first.ok(), "{:?}", first.failure);
    assert_eq!(first.failure, second.failure);
    assert_eq!(first.trace_len, second.trace_len);
    assert_eq!(first.trace_digest, second.trace_digest);
    assert_eq!(first.faults_fired, second.faults_fired);
    // SLO evaluation runs on the virtual clock, so the breach list is
    // part of the replay contract too.
    assert_eq!(first.slo_breaches, second.slo_breaches);
    assert!(first.trace_len > 0, "tracing must actually be on");
}

/// A fault sweep reports which seeds violated the SLO, not just which
/// crashed: under an impossibly tight objective every rotation breaches
/// (with the tenant and window named), while the default objective
/// stays green for the same case.
#[test]
fn swap_rotate_sweep_reports_slo_violating_seeds() {
    let mut case = ChaosCase::swap_rotate_from_seed(BASE_SEED + 4000);
    case.slo = Some(simkernel::obs::SloSpec::parse("swapin.p99 < 1us over 1s").unwrap());
    let outcome = run_case(&case);
    assert!(outcome.ok(), "{:?}", outcome.failure);
    assert!(
        !outcome.slo_breaches.is_empty(),
        "a 1us swap-in objective must breach"
    );
    for breach in &outcome.slo_breaches {
        assert!(
            breach.contains("tenant-"),
            "breach names the tenant: {breach}"
        );
        assert!(breach.contains("swapin"), "{breach}");
    }
    // The tightened objective rides the repro line, so the violating
    // run replays as-is.
    assert!(
        case.repro_line().contains("SIMCHAOS_SLO='"),
        "{}",
        case.repro_line()
    );

    // The same seed under the default objective is breach-free.
    let healthy = run_case(&ChaosCase::swap_rotate_from_seed(BASE_SEED + 4000));
    assert!(healthy.ok(), "{:?}", healthy.failure);
    assert!(
        healthy.slo_breaches.is_empty(),
        "default objective must hold: {:?}",
        healthy.slo_breaches
    );
}

/// Every chaos run stamps its seed and fault schedule into the run
/// metadata, which the Chrome-trace exporter carries in `otherData`:
/// any trace pulled from a chaos run is self-identifying. (Values may
/// belong to a concurrently-running case — the recorder is global — so
/// this only asserts the keys are stamped.)
#[test]
fn chaos_runs_stamp_seed_and_faults_into_trace_metadata() {
    let case = ChaosCase::swap_rotate_from_seed(BASE_SEED + 4001);
    let outcome = run_case(&case);
    assert!(outcome.ok(), "{:?}", outcome.failure);
    let meta = simkernel::obs::meta();
    for key in ["chaos.seed", "chaos.faults", "chaos.repro"] {
        assert!(
            meta.iter().any(|(k, _)| k == key),
            "meta must carry {key}: {meta:?}"
        );
    }
    let trace = simkernel::obs::chrome_trace();
    assert!(trace.contains("\"otherData\""), "trace carries metadata");
    assert!(trace.contains("chaos.seed"), "trace identifies the seed");
}

/// The replay contract, end to end: the same case executed twice is
/// byte-identical — same scheduler trace length, same trace digest,
/// same fault firings — for both a workload op and a transport soak.
#[test]
fn same_seed_replays_byte_identical_traces() {
    let seeds = [
        find_seed(BASE_SEED, |c| !c.op.is_soak() && !c.faults.is_empty()),
        find_seed(BASE_SEED, |c| c.op.is_soak()),
    ];
    for seed in seeds {
        let case = ChaosCase::from_seed(seed);
        let first = run_case(&case);
        let second = run_case(&case);
        assert_eq!(first.failure, second.failure, "{case}: verdict must replay");
        assert_eq!(
            first.trace_len, second.trace_len,
            "{case}: trace length must replay"
        );
        assert_eq!(
            first.trace_digest, second.trace_digest,
            "{case}: trace digest must replay"
        );
        assert_eq!(first.faults_fired, second.faults_fired);
        assert!(first.trace_len > 0, "tracing must actually be on");
    }
}

/// Different seeds must actually explore different interleavings: the
/// whole point of the explorer. A transport soak is nearly
/// single-threaded (no scheduler ties to break), so this uses a
/// workload op, where host, daemon, and offload threads race.
#[test]
fn different_seeds_produce_different_traces() {
    let seed = find_seed(BASE_SEED, |c| c.op == ChaosOp::SwapCycle);
    let mut a = ChaosCase::from_seed(seed);
    let b = a.clone();
    // Same case body, different scheduler seed.
    a.seed ^= 0x1;
    a.faults = b.faults.clone();
    let (ra, rb) = (run_case(&a), run_case(&b));
    assert!(ra.ok() && rb.ok(), "{:?} / {:?}", ra.failure, rb.failure);
    assert_ne!(
        (ra.trace_len, ra.trace_digest),
        (rb.trace_len, rb.trace_digest),
        "distinct scheduler seeds should yield distinct traces"
    );
}

/// The acceptance demo: deliberately re-inject a bug (disable the
/// transport retry layer), show the explorer catches it with a typed
/// error and a one-line repro, and show the repro replays
/// byte-identically. With the retry layer back on, the same case heals.
#[test]
fn disabled_retry_bug_is_caught_with_replayable_repro() {
    let seed = find_seed(BASE_SEED, |c| c.op == ChaosOp::ScpSoak);
    let mut case = ChaosCase::from_seed(seed);
    // Pin the schedule so the reset is due on the very first chunk.
    case.faults = phi_platform::FaultSchedule::parse("0:scp:connreset").unwrap();
    case.disable_retries = true;

    let outcome = run_case(&case);
    let why = outcome
        .failure
        .clone()
        .expect("a reset with retries disabled must surface");
    assert!(
        why.contains("ConnReset"),
        "failure must carry the typed error, got: {why}"
    );
    // Failures come with the flight recorder's last events attached.
    let tail = outcome
        .flight_tail
        .as_deref()
        .expect("failed case captures the tail");
    assert!(tail.contains("flight recorder (last"), "{tail}");
    let repro = case.repro_line();
    assert!(repro.contains("SIMCHAOS_NO_RETRY=1"));
    assert!(repro.contains("SIMCHAOS_FAULTS='0:scp:connreset'"));
    println!("caught injected bug; repro: {repro}");

    // The repro replays the byte-identical failing execution.
    let replay = run_case(&case);
    assert_eq!(replay.failure.as_deref(), Some(why.as_str()));
    assert_eq!(replay.trace_len, outcome.trace_len);
    assert_eq!(replay.trace_digest, outcome.trace_digest);

    // Fix the bug (re-enable retries): the same case passes.
    case.disable_retries = false;
    let healed = run_case(&case);
    assert!(healed.ok(), "retry layer must absorb the reset: {healed:?}");
    assert_eq!(healed.faults_fired, 1);
}

/// Replay hook for repro lines: a no-op unless `SIMCHAOS_SEED` is set.
#[test]
fn replay_case_from_env() {
    let Some(case) = ChaosCase::from_env() else {
        return;
    };
    println!("replaying {case}");
    let outcome = run_case(&case);
    println!(
        "trace_len={} trace_digest={:#018x} faults_fired={}",
        outcome.trace_len, outcome.trace_digest, outcome.faults_fired
    );
    if let Some(why) = outcome.failure {
        panic!(
            "case failed (as reproduced): {why}\nrepro: {}",
            case.repro_line()
        );
    }
}
