//! Scheduler golden-trace regression test.
//!
//! `tests/golden/scheduler_trace.txt` was recorded from the pre-rework
//! broadcast scheduler (global `Condvar::notify_all` + `HashMap` thread
//! table). The fast-path scheduler (per-thread parking slots, slab,
//! allocation-free block paths) must reproduce that trace *byte for
//! byte*: same virtual times, same thread ids, same event labels, same
//! order. Any divergence means the rework changed observable scheduling
//! behaviour, not just its wall-clock cost.
//!
//! Regenerate (only when intentionally changing scheduling semantics):
//!
//! ```text
//! UPDATE_SCHEDULER_GOLDEN=1 cargo test --test scheduler_golden
//! ```

use simkernel::time::us;
use simkernel::{Kernel, Semaphore, SimChannel, SimCondvar, SimMutex};
use std::sync::Arc;

/// A mixed workload covering every scheduler path: staggered sleeps
/// (timed run-queue), yields (same-time re-queue), bounded-channel
/// sends (block on full), latency channels (timed waits racing wakes),
/// semaphore posts (early wakes of blocked threads), condvar
/// notify/wait, joins (immediate and delayed), and a daemon service
/// thread parked at shutdown.
fn mixed_workload() -> Vec<simkernel::TraceEvent> {
    let k = Kernel::new();
    k.enable_trace();

    let work: SimChannel<u64> = SimChannel::bounded("work", 2);
    let done: SimChannel<u64> = SimChannel::with_options("done", None, us(50));

    // Daemon echo service: doubles items; blocked on an empty queue at
    // simulation end, so shutdown parks it (daemon exit path).
    {
        let (work, done) = (work.clone(), done.clone());
        k.spawn_daemon("svc", move || {
            while let Ok(v) = work.recv() {
                done.send(v * 2).unwrap();
            }
        });
    }

    let root_work = work.clone();
    k.spawn("root", move || {
        let state = Arc::new((SimMutex::new("gate", 0u64), SimCondvar::new("gate")));
        let sem = Semaphore::new("credits", 0);

        let mut producers = Vec::new();
        for p in 0..3u64 {
            let work = root_work.clone();
            let state = Arc::clone(&state);
            let sem = sem.clone();
            producers.push(simkernel::spawn(format!("prod{p}"), move || {
                for i in 0..4u64 {
                    simkernel::sleep(us(30 * p + 7 * i));
                    work.send(p * 10 + i).unwrap(); // capacity 2: blocks when full
                    simkernel::yield_now();
                }
                sem.wait(); // early-woken by the consumer's posts
                let (m, cv) = &*state;
                *m.lock() += 1;
                cv.notify_one();
            }));
        }

        let consumer = {
            let done = done.clone();
            let state = Arc::clone(&state);
            let sem = sem.clone();
            simkernel::spawn("consumer", move || {
                let mut sum = 0u64;
                for _ in 0..12 {
                    sum += done.recv().unwrap(); // 50µs latency → timed waits
                }
                for _ in 0..3 {
                    sem.post();
                }
                let (m, cv) = &*state;
                let g = m.lock();
                let g = cv.wait_while(g, |n| *n < 3);
                drop(g);
                sum
            })
        };

        let quick = simkernel::spawn("quick", || 7u64);
        simkernel::sleep(us(1));
        assert_eq!(quick.join(), 7); // join on an already-finished thread

        for h in producers {
            h.join();
        }
        let sum = consumer.join();
        let expect: u64 = (0..3u64)
            .flat_map(|p| (0..4u64).map(move |i| (p * 10 + i) * 2))
            .sum();
        assert_eq!(sum, expect);
    });

    k.run();
    k.trace()
}

fn render(trace: &[simkernel::TraceEvent]) -> String {
    let mut out = String::new();
    for ev in trace {
        out.push_str(&format!(
            "{}\t{}\t{}\n",
            ev.time.as_nanos(),
            ev.tid,
            ev.label
        ));
    }
    out
}

#[test]
fn scheduler_reproduces_pre_rework_golden_trace() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/scheduler_trace.txt"
    );
    let got = render(&mixed_workload());
    assert!(!got.is_empty());

    if std::env::var("UPDATE_SCHEDULER_GOLDEN").map(|v| v == "1") == Ok(true) {
        std::fs::write(golden_path, &got).unwrap();
        eprintln!("updated {golden_path}");
        return;
    }

    let want = std::fs::read_to_string(golden_path)
        .expect("missing golden trace; run with UPDATE_SCHEDULER_GOLDEN=1 to record");
    // Compare line counts first for a readable failure.
    assert_eq!(
        got.lines().count(),
        want.lines().count(),
        "event count diverged from the pre-rework scheduler"
    );
    for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        assert_eq!(g, w, "trace diverged at event {i}");
    }
}

/// The golden workload itself is deterministic: two runs, identical
/// traces (guards against the workload being an unstable fixture).
#[test]
fn golden_workload_is_deterministic() {
    assert_eq!(render(&mixed_workload()), render(&mixed_workload()));
}
