//! Failure injection: coprocessor crashes, memory exhaustion on restore
//! targets, and corrupt snapshots all surface as clean, typed errors —
//! never as silent corruption.

use snapify_repro::coi_sim::FunctionRegistry;
use snapify_repro::prelude::*;
use snapify_repro::workloads::{by_name, register_suite};

fn boot(name: &str) -> (SnapifyWorld, WorkloadSpec) {
    let spec = by_name(name).unwrap().scaled(64, 20);
    let registry = FunctionRegistry::new();
    register_suite(&registry, std::slice::from_ref(&spec));
    (SnapifyWorld::boot(registry), spec)
}

/// A checkpoint taken before a device "crash" rescues the application:
/// the crashed process is detected by the daemon's watchdog, and the
/// restart on the healthy device completes with correct output.
#[test]
fn checkpoint_rescues_crashed_device() {
    Kernel::run_root(|| {
        let (world, spec) = boot("KM");
        let run = WorkloadRun::launch(world.coi(), &spec, 0).unwrap();
        let handle = run.handle().clone();
        let host = run.host_proc().clone();

        // Take a checkpoint at iteration 0 (before any work).
        let (_s, _) =
            checkpoint_application(&world, &handle, &run.host_state(), "/snap/crash").unwrap();

        // Crash the offload process out-of-band (simulated card failure).
        let rt = world.coi().daemon(0).runtime(handle.pid()).unwrap();
        rt.terminate();
        simkernel::sleep(simkernel::time::ms(1));
        assert_eq!(world.coi().daemon(0).crashed_pids(), vec![handle.pid()]);

        // Host-side calls now fail cleanly.
        assert!(handle.ping().is_err());
        host.exit();

        // Restart on the healthy card and run to completion.
        let restarted = restart_application(&world, "/snap/crash", &spec.binary_name(), 1).unwrap();
        let resumed = WorkloadRun::resume_after_restart(
            &spec,
            &restarted.handle,
            &restarted.host_proc,
            &restarted.host_state,
        );
        let result = resumed.run_to_completion().unwrap();
        assert!(result.verified);
        resumed.destroy().unwrap();
    });
}

/// Restoring onto a device that cannot hold the image fails with a typed
/// error and leaks no memory on the target.
#[test]
fn restore_onto_full_device_is_clean() {
    Kernel::run_root(|| {
        let (world, spec) = boot("SS"); // largest store profile
        let run = WorkloadRun::launch(world.coi(), &spec, 0).unwrap();
        let handle = run.handle().clone();
        let snap = snapify_swapout(&handle, "/snap/full").unwrap();

        // Fill device 1 so the image cannot fit.
        let used_before = world.server().device(1).mem().used();
        world
            .server()
            .device(1)
            .mem()
            .alloc(world.server().device(1).mem().available() - MB)
            .unwrap();
        let err = snapify_swapin(&snap, 1).unwrap_err();
        assert!(matches!(err, SnapifyError::RestoreFailed(_)));
        // No partial allocations remain beyond our own filler.
        assert_eq!(
            world.server().device(1).mem().available(),
            MB,
            "restore must roll back partial allocations"
        );
        let _ = used_before;

        // The snapshot is still usable on the original device.
        snapify_swapin(&snap, 0).unwrap();
        let result = run.run_to_completion().unwrap();
        assert!(result.verified);
        run.destroy().unwrap();
    });
}

/// A corrupted snapshot file is rejected at restore time.
#[test]
fn corrupt_snapshot_is_rejected() {
    Kernel::run_root(|| {
        let (world, spec) = boot("MC");
        let run = WorkloadRun::launch(world.coi(), &spec, 0).unwrap();
        let handle = run.handle().clone();
        let _snap = snapify_swapout(&handle, "/snap/corrupt").unwrap();

        // Truncate the device snapshot on the host fs.
        let fs = world.server().host().fs();
        let path = "/snap/corrupt/device_snapshot";
        let full = fs.read_all(path).unwrap();
        fs.create_or_truncate(path);
        fs.append(path, full.slice(0, full.len() / 2)).unwrap();

        let snap2 = SnapifyT::new(&handle, "/snap/corrupt");
        let err = snapify_restore(&snap2, 0).unwrap_err();
        assert!(matches!(err, SnapifyError::RestoreFailed(_)), "got {err:?}");
    });
}

/// Restoring from a directory that was never written fails cleanly.
#[test]
fn missing_snapshot_is_rejected() {
    Kernel::run_root(|| {
        let (world, spec) = boot("MC");
        let run = WorkloadRun::launch(world.coi(), &spec, 0).unwrap();
        let handle = run.handle().clone();
        // Must pause first so the handle's locks are in the held state a
        // restore expects; then attempt a restore from a bogus path.
        let snap = snapify_swapout(&handle, "/snap/real").unwrap();
        let bogus = SnapifyT::new(&handle, "/snap/never-written");
        let err = snapify_restore(&bogus, 0).unwrap_err();
        assert!(matches!(err, SnapifyError::RestoreFailed(_)));
        // The real snapshot still works.
        snapify_swapin(&snap, 0).unwrap();
        run.destroy().unwrap();
    });
}

/// The daemon's request watchdog turns a stuck Snapify request into a
/// typed failure instead of hanging the requester forever: a capture
/// aimed at a restored-but-not-resumed process is a protocol misuse
/// whose pipe handler only answers resume requests, so without the
/// watchdog the capture would never complete.
#[test]
fn watchdog_rescues_stuck_capture_request() {
    Kernel::run_root(|| {
        let spec = by_name("KM").unwrap().scaled(64, 20);
        let registry = FunctionRegistry::new();
        register_suite(&registry, std::slice::from_ref(&spec));
        // Short (but not hair-trigger) deadline so the test completes
        // quickly; one backoff extension before giving up.
        let coi = CoiConfig {
            watchdog_timeout: simkernel::time::secs(2),
            watchdog_retries: 1,
            ..CoiConfig::default()
        };
        let world = SnapifyWorld::boot_with(PlatformParams::default(), coi, registry);
        let run = WorkloadRun::launch(world.coi(), &spec, 0).unwrap();
        let handle = run.handle().clone();
        let snap = snapify_swapout(&handle, "/snap/wd").unwrap();
        snapify_restore(&snap, 0).unwrap();

        // This request would hang forever; the watchdog surfaces it.
        snapify_capture(&snap, false).unwrap();
        let err = snapify_wait(&snap).unwrap_err();
        assert!(matches!(err, SnapifyError::Protocol(_)), "got {err:?}");

        // The process itself is unharmed: resume and run to completion.
        snapify_resume(&snap).unwrap();
        let result = run.run_to_completion().unwrap();
        assert!(result.verified);
        run.destroy().unwrap();
    });
}

/// A snapshot-stream open whose SCIF connect is killed by an injected
/// reset fails with a typed transient error and leaks none of the
/// staging memory the daemon charged while setting the stream up — the
/// host pool returns exactly to its baseline, and a retry succeeds.
#[test]
fn faulted_stream_open_releases_staging_memory() {
    use snapify_repro::simproc::SnapshotStorage;
    Kernel::run_root(|| {
        let spec = by_name("KM").unwrap().scaled(64, 20);
        let registry = FunctionRegistry::new();
        register_suite(&registry, std::slice::from_ref(&spec));
        // Due long after launch traffic quiesces, so the snapshot open's
        // SCIF connect is the first bus operation to consume it.
        let schedule = FaultSchedule::none().with(
            SimTime(simkernel::time::secs(500).as_nanos()),
            FaultTarget::Bus(0),
            FaultKind::ConnReset,
        );
        let world = SnapifyWorld::boot_with_faults(
            PlatformParams::default(),
            CoiConfig::default(),
            registry,
            schedule,
        );
        let run = WorkloadRun::launch(world.coi(), &spec, 0).unwrap();
        while simkernel::now().0 < simkernel::time::secs(501).as_nanos() {
            sleep(simkernel::time::secs(10));
        }

        let host_baseline = world.server().host().mem().used();
        let dev_baseline = world.server().device(0).mem().used();
        let err = world
            .io()
            .sink(NodeId::device(0), "/snap/faulted/device_snapshot")
            .err()
            .expect("open must surface the injected reset");
        assert!(matches!(err, IoError::ConnReset(_)), "got {err}");
        assert_eq!(
            world.server().host().mem().used(),
            host_baseline,
            "faulted open must release host staging memory"
        );
        assert_eq!(
            world.server().device(0).mem().used(),
            dev_baseline,
            "faulted open must release device staging memory"
        );

        // The fault is consumed: the very next snapshot works end-to-end.
        let handle = run.handle().clone();
        let snap = snapify_swapout(&handle, "/snap/after-fault").unwrap();
        snapify_swapin(&snap, 0).unwrap();
        let result = run.run_to_completion().unwrap();
        assert!(result.verified);
        run.destroy().unwrap();
    });
}

/// Memory accounting is exact across repeated swap cycles: no leaks, no
/// double frees, capacity fully restored.
#[test]
fn repeated_swap_cycles_leak_nothing() {
    Kernel::run_root(|| {
        let (world, spec) = boot("NB");
        let run = WorkloadRun::launch(world.coi(), &spec, 0).unwrap();
        let handle = run.handle().clone();
        let resident = world.server().device(0).mem().used();
        for i in 0..5 {
            let snap = snapify_swapout(&handle, &format!("/snap/cycle{i}")).unwrap();
            assert_eq!(
                world.server().device(0).mem().used(),
                0,
                "cycle {i}: memory must be fully released"
            );
            snapify_swapin(&snap, 0).unwrap();
            assert_eq!(
                world.server().device(0).mem().used(),
                resident,
                "cycle {i}: memory must be fully restored"
            );
        }
        let result = run.run_to_completion().unwrap();
        assert!(result.verified);
        run.destroy().unwrap();
        assert_eq!(world.server().device(0).mem().used(), 0);
    });
}
