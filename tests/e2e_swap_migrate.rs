//! End-to-end swapping and migration scenarios, including the memory-
//! pressure multi-tenancy case that motivates process swapping (§1).

use snapify_repro::coi_sim::FunctionRegistry;
use snapify_repro::prelude::*;
use snapify_repro::snapify::{Command, SnapifyCli};
use snapify_repro::workloads::{by_name, register_suite};
use std::sync::Arc;

fn boot(name: &str) -> (SnapifyWorld, WorkloadSpec) {
    let spec = by_name(name).unwrap().scaled(64, 20);
    let registry = FunctionRegistry::new();
    register_suite(&registry, std::slice::from_ref(&spec));
    (SnapifyWorld::boot(registry), spec)
}

#[test]
fn migration_chain_preserves_execution() {
    Kernel::run_root(|| {
        let (world, spec) = boot("FFT");
        let run = Arc::new(WorkloadRun::launch(world.coi(), &spec, 0).unwrap());
        let handle = run.handle().clone();
        let host = run.host_proc().clone();
        let driver = {
            let r = Arc::clone(&run);
            host.spawn_thread("driver", move || r.run_to_completion())
        };
        // Bounce the process between the two cards while it runs.
        simkernel::sleep(simkernel::time::ms(20));
        snapify_migrate(&handle, 1).unwrap();
        simkernel::sleep(simkernel::time::ms(20));
        snapify_migrate(&handle, 0).unwrap();
        simkernel::sleep(simkernel::time::ms(20));
        snapify_migrate(&handle, 1).unwrap();
        assert_eq!(handle.device(), 1);
        assert!(driver.join().unwrap().verified);
        run.destroy().unwrap();
    });
}

#[test]
fn swap_frees_memory_for_a_second_tenant() {
    Kernel::run_root(|| {
        let registry = FunctionRegistry::new();
        registry.register(
            snapify_repro::coi_sim::DeviceBinary::new("tenant.so", MB, 64 * MB).simple_function(
                "fill",
                |ctx| {
                    let n = ctx.buffer_len(0);
                    ctx.compute(1e9, 60);
                    ctx.write_buffer(0, Payload::synthetic(0xF1, n));
                    Vec::new()
                },
            ),
        );
        let world = SnapifyWorld::boot(registry);
        let mem = world.server().device(0).mem().clone();

        // Tenant A takes ~4.1 GiB.
        let host_a = world.coi().create_host_process("a");
        let a = world.coi().create_process(&host_a, 0, "tenant.so").unwrap();
        let buf_a = a.create_buffer(4 * GB).unwrap();
        a.buffer_write(&buf_a, Payload::synthetic(0xA, 4 * GB))
            .unwrap();
        let used_with_a = mem.used();
        assert!(used_with_a > 4 * GB);

        // Tenant B cannot allocate 4 GiB while A is resident.
        let host_b = world.coi().create_host_process("b");
        let b = world.coi().create_process(&host_b, 0, "tenant.so").unwrap();
        assert!(b.create_buffer(4 * GB).is_err(), "card must be full");

        // Swap A out; now B fits.
        let snap_a = snapify_swapout(&a, "/swap/a").unwrap();
        assert!(mem.used() < used_with_a / 4);
        let buf_b = b.create_buffer(4 * GB).unwrap();
        b.buffer_write(&buf_b, Payload::synthetic(0xB, 4 * GB))
            .unwrap();
        b.run_sync("fill", Vec::new(), &[&buf_b]).unwrap();
        b.destroy().unwrap();

        // Swap A back; its buffer content is intact.
        snapify_swapin(&snap_a, 0).unwrap();
        assert_eq!(
            a.buffer_read(&buf_a).unwrap().digest(),
            Payload::synthetic(0xA, 4 * GB).digest()
        );
        a.run_sync("fill", Vec::new(), &[&buf_a]).unwrap();
        a.destroy().unwrap();
    });
}

#[test]
fn swapped_out_process_blocks_host_calls_until_swapin() {
    Kernel::run_root(|| {
        let (world, spec) = boot("MC");
        let run = WorkloadRun::launch(world.coi(), &spec, 0).unwrap();
        let handle = run.handle().clone();

        let snap = snapify_swapout(&handle, "/swap/block").unwrap();
        // A host thread trying to offload while swapped out blocks (the
        // drain locks are held), and completes only after swap-in.
        let h2 = handle.clone();
        let blocked = handle.host_proc().clone().spawn_thread("blocked", move || {
            let t0 = simkernel::now();
            // This buffer create uses the cmd channel, which is locked.
            let buf = h2.create_buffer(1024).unwrap();
            let _ = h2.buffer_write(&buf, Payload::synthetic(1, 1024));
            simkernel::now() - t0
        });
        simkernel::sleep(simkernel::time::ms(50));
        snapify_swapin(&snap, 0).unwrap();
        let waited = blocked.join();
        assert!(
            waited.as_nanos() >= simkernel::time::ms(50).as_nanos(),
            "the call must have blocked across the swap, waited {waited}"
        );
        run.destroy().unwrap();
    });
}

#[test]
fn cli_full_lifecycle() {
    Kernel::run_root(|| {
        let (world, spec) = boot("KM");
        let run = WorkloadRun::launch(world.coi(), &spec, 0).unwrap();
        let handle = run.handle().clone();
        let cli = SnapifyCli::new();
        cli.register(&handle);
        let pid = handle.host_proc().pid().0;

        cli.submit(
            pid,
            Command::SwapOut {
                path: "/swap/cli".into(),
            },
        )
        .unwrap();
        assert_eq!(world.coi().daemon(0).live_processes(), 0);
        cli.submit(pid, Command::SwapIn { device: 1 }).unwrap();
        cli.submit(pid, Command::Migrate { device: 0 }).unwrap();
        assert_eq!(handle.device(), 0);
        let result = run.run_to_completion().unwrap();
        assert!(result.verified);
        run.destroy().unwrap();
    });
}

#[test]
fn migration_to_full_device_fails_cleanly() {
    Kernel::run_root(|| {
        let (world, spec) = boot("NB");
        // Fill device 1 almost completely (leave only 1 MiB).
        let d1 = world.server().device(1).mem().clone();
        d1.alloc(d1.available() - MB).unwrap();
        let run = WorkloadRun::launch(world.coi(), &spec, 0).unwrap();
        let handle = run.handle().clone();
        let err = snapify_migrate(&handle, 1).unwrap_err();
        assert!(
            matches!(err, SnapifyError::RestoreFailed(_)),
            "expected RestoreFailed, got {err:?}"
        );
        // The snapshot still exists: swap-in on the original device works.
    });
}
