//! Observability determinism: two identical end-to-end checkpoint runs
//! must produce byte-identical Chrome traces and metrics summaries.
//!
//! This is the observability layer's core guarantee (and what makes a
//! committed trace diffable in CI): the recorder is a pure function of
//! the simulation, which is itself deterministic.
//!
//! This test owns its integration binary on purpose — the recorder is a
//! process-wide singleton, so sharing a binary with unrelated tests that
//! run in parallel would interleave their events.

use simkernel::obs;
use snapify_repro::coi_sim::FunctionRegistry;
use snapify_repro::prelude::*;
use snapify_repro::workloads::{by_name, register_suite};
use std::sync::{Arc, Mutex, MutexGuard};

/// The recorder is process-wide; serialize the tests in this binary.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn recorder_lock() -> MutexGuard<'static, ()> {
    RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One fully-traced checkpoint → restart → finish run. Returns the three
/// export artifacts.
fn traced_checkpoint_run() -> (String, String, String) {
    obs::reset();
    obs::enable();
    Kernel::run_root(|| {
        let spec = by_name("JAC").unwrap().scaled(64, 20);
        let registry = FunctionRegistry::new();
        register_suite(&registry, std::slice::from_ref(&spec));
        let world = SnapifyWorld::boot(registry);

        let run = Arc::new(WorkloadRun::launch(world.coi(), &spec, 0).unwrap());
        let handle = run.handle().clone();
        let host = run.host_proc().clone();
        let driver = {
            let r = Arc::clone(&run);
            host.spawn_thread("driver", move || r.run_to_completion())
        };
        simkernel::sleep(simkernel::time::ms(30));

        let (_s, report) =
            checkpoint_application(&world, &handle, &run.host_state(), "/snap/traced").unwrap();
        assert!(report.device_snapshot_bytes > 0);
        assert!(driver.join().unwrap().verified);
        run.destroy().unwrap();
        host.exit();

        let restarted =
            restart_application(&world, "/snap/traced", &spec.binary_name(), 1).unwrap();
        let resumed = WorkloadRun::resume_after_restart(
            &spec,
            &restarted.handle,
            &restarted.host_proc,
            &restarted.host_state,
        );
        assert!(resumed.run_to_completion().unwrap().verified);
        resumed.destroy().unwrap();
    });
    let artifacts = (
        obs::chrome_trace(),
        obs::summary_json(),
        obs::summary_text(),
    );
    obs::disable();
    artifacts
}

#[test]
fn identical_runs_export_byte_identical_artifacts() {
    let _g = recorder_lock();
    let (trace_a, json_a, text_a) = traced_checkpoint_run();
    let (trace_b, json_b, text_b) = traced_checkpoint_run();

    // Byte-identical across runs (compare sizes first for a readable
    // failure before diffing megabytes of JSON).
    assert_eq!(trace_a.len(), trace_b.len(), "trace length diverged");
    assert_eq!(trace_a, trace_b, "Chrome trace diverged between runs");
    assert_eq!(json_a, json_b, "metrics summary JSON diverged between runs");
    assert_eq!(text_a, text_b, "metrics summary text diverged between runs");

    // The trace is the Chrome trace-event object form...
    assert!(trace_a.starts_with("{\"traceEvents\":["));
    assert!(trace_a.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    // ...and contains the protocol-phase spans, each begin/end balanced.
    for phase in [
        "snapify.checkpoint",
        "snapify.pause",
        "snapify.capture",
        "snapify.transfer",
        "snapify.resume",
        "snapify.restore",
        "blcr.checkpoint",
        "coi.pause.drain",
    ] {
        let begins = trace_a
            .matches(&format!("\"name\":\"{phase}\",\"ph\":\"B\""))
            .count();
        assert!(begins > 0, "no begin event for span '{phase}'");
        let ends = trace_a
            .matches(&format!("\"name\":\"{phase}\",\"ph\":\"E\""))
            .count();
        assert_eq!(begins, ends, "unbalanced span '{phase}'");
    }

    // Nesting: snapify.pause is recorded under the snapify.checkpoint
    // span (a non-zero parent id).
    let pause_begin = trace_a
        .find("\"name\":\"snapify.pause\",\"ph\":\"B\"")
        .expect("pause begin");
    let args = &trace_a[pause_begin..trace_a[pause_begin..].find('}').unwrap() + pause_begin];
    assert!(
        args.contains("\"parent\":") && !args.contains("\"parent\":0"),
        "snapify.pause should nest under snapify.checkpoint: {args}"
    );

    // The summary has per-phase durations and bytes-moved per transport.
    for key in [
        "\"snapify.pause\"",
        "\"snapify.capture\"",
        "\"snapify.transfer\"",
        "\"snapify.resume\"",
        "\"scif.bytes_sent\"",
        "\"pcie.dma_bytes\"",
        "\"blcr.snapshot_bytes\"",
        "\"io.Snapify-IO.bytes_written\"",
    ] {
        assert!(json_a.contains(key), "summary missing {key}:\n{json_a}");
    }
}

/// With recording left disabled (the default), the same scenario still
/// runs and records nothing — the disabled path really is a no-op.
#[test]
fn disabled_recording_stays_empty() {
    let _g = recorder_lock();
    // events_total() counts even events later evicted from the bounded
    // flight ring, so it can't be fooled by a full buffer.
    let before = obs::events_total();
    Kernel::run_root(|| {
        let spec = by_name("MC").unwrap().scaled(128, 10);
        let registry = FunctionRegistry::new();
        register_suite(&registry, std::slice::from_ref(&spec));
        let world = SnapifyWorld::boot(registry);
        let run = Arc::new(WorkloadRun::launch(world.coi(), &spec, 0).unwrap());
        let handle = run.handle().clone();
        let host = run.host_proc().clone();
        let driver = {
            let r = Arc::clone(&run);
            host.spawn_thread("driver", move || r.run_to_completion())
        };
        simkernel::sleep(simkernel::time::ms(10));
        checkpoint_application(&world, &handle, &run.host_state(), "/snap/quiet").unwrap();
        assert!(driver.join().unwrap().verified);
        run.destroy().unwrap();
    });
    let after = obs::events_total();
    assert_eq!(before, after, "disabled recorder must not record events");
}
