//! Multi-domain kernel compatibility and determinism goldens.
//!
//! Two guarantees pin the multi-domain rework to the serial kernel:
//!
//! 1. **`domains = 1` is the old kernel, byte for byte.** A single-domain
//!    [`MultiKernel`] running the scheduler-golden mixed workload must
//!    reproduce `tests/golden/scheduler_trace.txt` exactly — the same
//!    file the serial scheduler is held to in `scheduler_golden.rs`.
//!    Single-domain runs never pause at horizons, never salt the RNG,
//!    and never tag thread ids, so any byte of divergence means the
//!    multi-domain machinery leaked into the serial path.
//!
//! 2. **Fixed `(seed, domain count)` is reproducible.** A 4-domain
//!    workload with cross-domain traffic yields an identical merged
//!    trace fingerprint across repeated runs, under both `Fifo` and
//!    `Random(seed)` scheduling — parallel execution must not let
//!    wall-clock interleaving reach simulation state.

use simkernel::domain::{MultiDomainConfig, MultiKernel};
use simkernel::time::us;
use simkernel::{SchedPolicy, Semaphore, SimChannel, SimCondvar, SimMutex};
use std::sync::Arc;

/// The scheduler-golden mixed workload (see `scheduler_golden.rs`), run
/// on a single-domain [`MultiKernel`] instead of a plain [`Kernel`].
///
/// [`Kernel`]: simkernel::Kernel
fn mixed_workload_single_domain() -> String {
    let mk = MultiKernel::new(MultiDomainConfig::new(1, us(50)));
    mk.enable_trace();
    let k = mk.domain(0);

    let work: SimChannel<u64> = SimChannel::bounded("work", 2);
    let done: SimChannel<u64> = SimChannel::with_options("done", None, us(50));

    {
        let (work, done) = (work.clone(), done.clone());
        k.spawn_daemon("svc", move || {
            while let Ok(v) = work.recv() {
                done.send(v * 2).unwrap();
            }
        });
    }

    let root_work = work.clone();
    k.spawn("root", move || {
        let state = Arc::new((SimMutex::new("gate", 0u64), SimCondvar::new("gate")));
        let sem = Semaphore::new("credits", 0);

        let mut producers = Vec::new();
        for p in 0..3u64 {
            let work = root_work.clone();
            let state = Arc::clone(&state);
            let sem = sem.clone();
            producers.push(simkernel::spawn(format!("prod{p}"), move || {
                for i in 0..4u64 {
                    simkernel::sleep(us(30 * p + 7 * i));
                    work.send(p * 10 + i).unwrap();
                    simkernel::yield_now();
                }
                sem.wait();
                let (m, cv) = &*state;
                *m.lock() += 1;
                cv.notify_one();
            }));
        }

        let consumer = {
            let done = done.clone();
            let state = Arc::clone(&state);
            let sem = sem.clone();
            simkernel::spawn("consumer", move || {
                let mut sum = 0u64;
                for _ in 0..12 {
                    sum += done.recv().unwrap();
                }
                for _ in 0..3 {
                    sem.post();
                }
                let (m, cv) = &*state;
                let g = m.lock();
                let g = cv.wait_while(g, |n| *n < 3);
                drop(g);
                sum
            })
        };

        let quick = simkernel::spawn("quick", || 7u64);
        simkernel::sleep(us(1));
        assert_eq!(quick.join(), 7);

        for h in producers {
            h.join();
        }
        let sum = consumer.join();
        let expect: u64 = (0..3u64)
            .flat_map(|p| (0..4u64).map(move |i| (p * 10 + i) * 2))
            .sum();
        assert_eq!(sum, expect);
    });

    mk.run();
    let mut out = String::new();
    for (domain, ev) in mk.merged_trace() {
        assert_eq!(domain, 0, "single-domain trace must come from domain 0");
        out.push_str(&format!(
            "{}\t{}\t{}\n",
            ev.time.as_nanos(),
            ev.tid,
            ev.label
        ));
    }
    out
}

#[test]
fn single_domain_reproduces_scheduler_golden_trace() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/scheduler_trace.txt"
    );
    let got = mixed_workload_single_domain();
    assert!(!got.is_empty());
    let want = std::fs::read_to_string(golden_path)
        .expect("missing golden trace; run scheduler_golden with UPDATE_SCHEDULER_GOLDEN=1");
    assert_eq!(
        got.lines().count(),
        want.lines().count(),
        "single-domain MultiKernel event count diverged from the serial golden trace"
    );
    for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        assert_eq!(
            g, w,
            "single-domain trace diverged from serial golden at event {i}"
        );
    }
}

/// Four domains in a ring: every domain runs local churn (staggered
/// sleeps + a latency channel) while passing tokens around cross-domain
/// ports. Exercises parallel windows, barrier deliveries, and (under
/// `Random`) per-domain salted tie-breaking.
fn four_domain_fingerprint(policy: SchedPolicy) -> (usize, u64) {
    const D: u32 = 4;
    let mk = MultiKernel::new(MultiDomainConfig::new(D, us(50)).with_policy(policy));
    mk.enable_trace();

    let (txs, mut rxs): (Vec<_>, Vec<_>) = (0..D)
        .map(|d| mk.port::<u64>(format!("ring{d}"), d, (d + 1) % D, us(60)))
        .unzip();
    rxs.rotate_right(1); // rxs[d] now receives the (d-1) → d port

    for (d, (tx, rx)) in txs.into_iter().zip(rxs).enumerate() {
        let k = mk.domain(d as u32);
        // Local churn: a latency channel serviced by a helper thread.
        let local: SimChannel<u64> = SimChannel::with_options(format!("local{d}"), None, us(5));
        {
            let local = local.clone();
            k.spawn(format!("churn{d}"), move || {
                for i in 0..20u64 {
                    simkernel::sleep(us(3 + (i % 7)));
                    local.send(i).unwrap();
                }
                local.close();
            });
        }
        k.spawn(format!("node{d}"), move || {
            if d == 0 {
                tx.send(0).unwrap();
            }
            let mut hops = 0u64;
            loop {
                match rx.recv() {
                    Ok(v) => {
                        hops = v + 1;
                        if hops >= 12 {
                            // Retire the token and close the ring; the
                            // closure marker chases around and releases
                            // every other node's recv.
                            tx.close();
                            break;
                        }
                        simkernel::sleep(us(2));
                        tx.send(hops).unwrap();
                    }
                    Err(_) => {
                        tx.close();
                        break;
                    }
                }
            }
            while local.recv().is_ok() {}
            hops
        });
    }

    mk.run();
    mk.fingerprint()
}

#[test]
fn four_domain_runs_are_reproducible_under_fifo() {
    let runs: Vec<_> = (0..3)
        .map(|_| four_domain_fingerprint(SchedPolicy::Fifo))
        .collect();
    assert!(runs[0].0 > 0, "workload must produce trace events");
    assert_eq!(runs[0], runs[1], "fifo run 2 diverged");
    assert_eq!(runs[0], runs[2], "fifo run 3 diverged");
}

#[test]
fn four_domain_runs_are_reproducible_under_random() {
    let runs: Vec<_> = (0..3)
        .map(|_| four_domain_fingerprint(SchedPolicy::Random(0xC0FFEE)))
        .collect();
    assert!(runs[0].0 > 0, "workload must produce trace events");
    assert_eq!(runs[0], runs[1], "random run 2 diverged");
    assert_eq!(runs[0], runs[2], "random run 3 diverged");
}
