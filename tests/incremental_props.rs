//! Property tests of incremental (O(dirty)) warm capture on the swap
//! path: reusing clean regions from the prior snapshot is an
//! optimization, never a semantic change. For arbitrary dirty sets and
//! wakeup orders, a tenant restored from an incremental capture must be
//! byte-identical to one restored from an always-full capture — and a
//! transport fault landing mid-delta-capture must not corrupt the delta
//! chain the next successful capture extends.

use proptest::prelude::*;
use snapify_repro::coi_sim::FunctionRegistry;
use snapify_repro::prelude::*;
use snapify_repro::simkernel::time::secs;

const BUFS: usize = 6;
const BUF_BYTES: u64 = 8 * MB;

fn registry() -> FunctionRegistry {
    let reg = FunctionRegistry::new();
    reg.register(
        DeviceBinary::new("tenant.so", MB, 32 * MB).simple_function("bump", |ctx| {
            ctx.compute(1e8, 60);
            Vec::new()
        }),
    );
    reg
}

/// One cold park + rotate, an arbitrary dirty set, then a warm park +
/// rotate. Verifies every buffer against its expected payload in-sim and
/// returns the restored digests plus the store's clean-byte counter.
fn park_cycle(
    policy: SchedPolicy,
    seed: u64,
    rebase_every: u32,
    dirty: Vec<(u8, u64)>,
) -> (Vec<u64>, u64) {
    Kernel::run_root_with(policy, move || {
        let world = SnapifyWorld::boot_dedup_with(
            PlatformParams::default(),
            CoiConfig::default(),
            registry(),
            DedupConfig {
                incremental_rebase_every: rebase_every,
                ..DedupConfig::default()
            },
        );
        let store = world.store().unwrap().clone();
        let sched = SwapScheduler::new(1, "/prop/incr").with_store(&store);
        let host = world.coi().create_host_process("t");
        let h = world.coi().create_process(&host, 0, "tenant.so").unwrap();
        let mut bufs = Vec::new();
        for i in 0..BUFS as u64 {
            let b = h.create_buffer(BUF_BYTES).unwrap();
            h.buffer_write(&b, Payload::synthetic(seed ^ i, BUF_BYTES))
                .unwrap();
            bufs.push(b);
        }
        let id = sched.admit(&h, 0);
        sched.park(id).unwrap();
        sched.rotate().unwrap();

        let mut expect: Vec<u64> = (0..BUFS as u64).map(|i| seed ^ i).collect();
        for (b, s) in &dirty {
            let i = *b as usize % BUFS;
            h.buffer_write(&bufs[i], Payload::synthetic(*s, BUF_BYTES))
                .unwrap();
            expect[i] = *s;
        }
        sched.park(id).unwrap();
        sched.rotate().unwrap();

        let digests: Vec<u64> = bufs
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let got = h.buffer_read(b).unwrap().digest();
                assert_eq!(
                    got,
                    Payload::synthetic(expect[i], BUF_BYTES).digest(),
                    "buffer {i} corrupted (rebase_every={rebase_every})"
                );
                got
            })
            .collect();
        (digests, store.stats().capture_clean_bytes)
    })
}

/// Restore-from-incremental must equal restore-from-full: same tenant,
/// same dirty set, `rebase_every = 1` (always-full baseline) against
/// `rebase_every = 0` (never rebase).
fn incremental_matches_full(policy: SchedPolicy, seed: u64, dirty: Vec<(u8, u64)>) {
    let (full, full_clean) = park_cycle(policy, seed, 1, dirty.clone());
    let (inc, inc_clean) = park_cycle(policy, seed, 0, dirty.clone());
    assert_eq!(
        full, inc,
        "incremental restore diverges from the full-capture baseline"
    );
    assert_eq!(full_clean, 0, "the always-full baseline must never reuse");
    let distinct: std::collections::HashSet<usize> =
        dirty.iter().map(|(b, _)| *b as usize % BUFS).collect();
    if distinct.len() < BUFS {
        assert!(
            inc_clean > 0,
            "clean buffers must replay from the prior snapshot"
        );
    }
}

/// A host-memory fault landing on the warm (delta) capture must fail
/// that swap-out cleanly: the tenant stays resident and runnable, the
/// prior snapshot chain stays restorable, and a retried park + rotate
/// round-trips every byte.
fn fault_mid_delta_capture_leaves_chain_intact(policy: SchedPolicy, seed: u64) {
    Kernel::run_root_with(policy, move || {
        let schedule = FaultSchedule::none().with(
            SimTime(secs(30).as_nanos()),
            FaultTarget::Mem(NodeId::HOST),
            FaultKind::Oom,
        );
        let world = SnapifyWorld::boot_dedup_with_faults(
            PlatformParams::default(),
            CoiConfig::default(),
            registry(),
            DedupConfig::default(),
            schedule,
        );
        let store = world.store().unwrap().clone();
        let sched = SwapScheduler::new(1, "/prop/chaos").with_store(&store);
        let host = world.coi().create_host_process("t");
        let h = world.coi().create_process(&host, 0, "tenant.so").unwrap();
        let mut bufs = Vec::new();
        for i in 0..BUFS as u64 {
            let b = h.create_buffer(BUF_BYTES).unwrap();
            h.buffer_write(&b, Payload::synthetic(seed ^ i, BUF_BYTES))
                .unwrap();
            bufs.push(b);
        }
        let id = sched.admit(&h, 0);
        sched.park(id).unwrap();
        sched.rotate().unwrap();
        let manifests_before = store.stats().manifests;

        // Dirty one buffer, then step past the fault's due time: the
        // delta capture's first host-side allocation hits the Oom.
        h.buffer_write(&bufs[0], Payload::synthetic(seed ^ 777, BUF_BYTES))
            .unwrap();
        simkernel::sleep(secs(31));
        assert!(
            sched.park(id).is_err(),
            "the injected fault must surface from the delta capture"
        );

        // The failed capture committed nothing and the tenant still runs.
        assert_eq!(
            store.stats().manifests,
            manifests_before,
            "a failed delta capture must not commit a manifest"
        );
        h.run_sync("bump", Vec::new(), &[]).unwrap();

        // The fault fired once; the retried delta capture extends the
        // intact chain and the restore round-trips every byte.
        sched.park(id).unwrap();
        sched.rotate().unwrap();
        for (i, b) in bufs.iter().enumerate() {
            let want = if i == 0 { seed ^ 777 } else { seed ^ i as u64 };
            assert_eq!(
                h.buffer_read(b).unwrap().digest(),
                Payload::synthetic(want, BUF_BYTES).digest(),
                "buffer {i} corrupted after the faulted delta capture"
            );
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// FIFO scheduling: incremental restore equals full restore for
    /// arbitrary dirty sets.
    #[test]
    fn incremental_matches_full_fifo(
        seed in 0u64..1_000_000,
        dirty in prop::collection::vec((any::<u8>(), 1_000_000u64..2_000_000), 0..4),
    ) {
        incremental_matches_full(SchedPolicy::Fifo, seed, dirty);
    }

    /// Randomized wakeup order: the pipelined shipper may interleave
    /// with the span-replay path arbitrarily; bytes must not change.
    #[test]
    fn incremental_matches_full_random_sched(
        sched_seed in 1u64..u64::MAX,
        seed in 0u64..1_000_000,
        dirty in prop::collection::vec((any::<u8>(), 1_000_000u64..2_000_000), 0..4),
    ) {
        incremental_matches_full(SchedPolicy::Random(sched_seed), seed, dirty);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, .. ProptestConfig::default() })]

    /// Randomized wakeup order under a fault landing mid-delta-capture.
    #[test]
    fn fault_mid_delta_capture_random_sched(
        sched_seed in 1u64..u64::MAX,
        seed in 0u64..1_000_000,
    ) {
        fault_mid_delta_capture_leaves_chain_intact(SchedPolicy::Random(sched_seed), seed);
    }
}

/// FIFO scheduling under a fault landing mid-delta-capture.
#[test]
fn fault_mid_delta_capture_fifo() {
    fault_mid_delta_capture_leaves_chain_intact(SchedPolicy::Fifo, 42);
}
