//! Fleet control-plane properties: a connection reset on the shared
//! pool's NIC mid-cross-node-migration must fail the in-migration at
//! the destination, roll the tenant back to its source (still
//! resumable — the rollback path runs an offload on it before
//! declaring success), and leak nothing: no snapshot files, no pool
//! directory entries, no referenced chunks.
//!
//! The failure is replayable through the chaos explorer's one-line
//! contract: `SIMCHAOS_SEED=<n> SIMCHAOS_OP=fleet-migrate` expands to
//! the same case and the same byte-identical execution, which the
//! second test proves by rebuilding the case exactly the way
//! `ChaosCase::from_env` would.

use phi_platform::{FaultKind, FaultSchedule, FaultTarget};
use simchaos::{run_case, ChaosCase, ChaosOp};
use simkernel::time::us;
use simkernel::SimTime;
use snapify::{FleetConfig, FleetScheduler};

/// A reset on the destination's pool NIC fires during the first
/// cross-node import, fails that migration, and the source restores
/// the tenant in place with nothing leaked anywhere.
#[test]
fn connreset_mid_migration_rolls_back_and_leaks_nothing() {
    // Node 1 is the first rebalancing destination (least loaded, lowest
    // id); every node gets the schedule but only node 1 consults net1.
    let faults = FaultSchedule::none().with(
        SimTime::ZERO + us(100),
        FaultTarget::Net(1),
        FaultKind::ConnReset,
    );
    let cfg = FleetConfig {
        nodes: 4,
        tenants: 12,
        base_bytes: 8 << 20,
        unique_bytes: 1 << 20,
        max_migrations: 3,
        node_faults: vec![faults; 4],
        ..FleetConfig::default()
    };
    let report = FleetScheduler::new(FleetConfig { ..cfg }).run();

    // The reset failed at least one migration, and its error survived
    // into the outcome record.
    assert!(
        report.failed_back() >= 1,
        "the injected reset must fail a migration: {:?}",
        report.migrations
    );
    let failed = report
        .migrations
        .iter()
        .find(|m| !m.committed)
        .expect("a failed migration is recorded");
    assert_eq!(failed.to, 1, "the reset fired on the destination's NIC");
    assert!(failed.error.is_some(), "failure carries the typed error");

    // The tenant is resumable at the source: every failed migration
    // produced exactly one source rollback, and the rollback path runs
    // an offload on the restored tenant before counting it.
    let rolled_back: u64 = report.agents.iter().map(|a| a.restored_back).sum();
    assert_eq!(rolled_back, report.failed_back() as u64);

    // No tenant lost or duplicated across the whole episode.
    let before: u64 = report
        .loads_before
        .iter()
        .map(|l| l.resident + l.parked)
        .sum();
    let after: u64 = report
        .loads_after
        .iter()
        .map(|l| l.resident + l.parked)
        .sum();
    assert_eq!(before, after);
    let final_tenants: u64 = report.agents.iter().map(|a| a.final_tenants).sum();
    assert_eq!(final_tenants, report.tenants as u64);

    // Nothing leaked: no snapshot manifest still holds a directory
    // entry, no chunk is still referenced or pinned.
    assert_eq!(report.pool_live_manifests, 0, "leaked pool manifests");
    assert_eq!(report.pool_live_chunks, 0, "leaked pool chunks");
}

/// The chaos explorer's replay contract holds for fleet cases: the same
/// seed expands to the same case, executes byte-identically, and the
/// env-style reconstruction (`SIMCHAOS_SEED` + `SIMCHAOS_OP` +
/// `SIMCHAOS_FAULTS` round-tripped through text) replays the same
/// trace.
#[test]
fn fleet_migrate_replays_byte_identically_via_simchaos_seed() {
    let seed = 11;
    let case = ChaosCase::fleet_migrate_from_seed(seed);
    let first = run_case(&case);
    assert!(first.ok(), "fleet case must pass: {:?}", first.failure);
    assert!(
        first.faults_fired >= 1,
        "a generated reset must fail a migration (repro: {})",
        case.repro_line()
    );

    // Rebuild the case exactly as `ChaosCase::from_env` would from the
    // repro line: base expansion from the seed, op override by label,
    // fault schedule round-tripped through its text form.
    let mut replay = ChaosCase::from_seed(seed);
    replay.op = ChaosOp::parse("fleet-migrate").unwrap();
    replay.slo = None;
    replay.faults = FaultSchedule::parse(&case.faults.to_string()).unwrap();
    let second = run_case(&replay);
    assert!(second.ok(), "replay must pass: {:?}", second.failure);
    assert_eq!(
        (first.trace_len, first.trace_digest),
        (second.trace_len, second.trace_digest),
        "replay must be byte-identical"
    );
    assert_eq!(first.faults_fired, second.faults_fired);
}
