//! Determinism: the whole stack — scheduler, platform, SCIF, COI,
//! Snapify — is a deterministic function of its inputs. Running the same
//! scenario twice must produce bit-identical timings, sizes, and event
//! traces. This is what makes the "snapshot at an arbitrary time"
//! property tests reproducible.

use snapify_repro::coi_sim::FunctionRegistry;
use snapify_repro::prelude::*;
use snapify_repro::workloads::{by_name, register_suite};
use std::sync::Arc;

fn checkpointed_run() -> (u64, u64, u64, u64) {
    Kernel::run_root(|| {
        let spec = by_name("JAC").unwrap().scaled(64, 20);
        let registry = FunctionRegistry::new();
        register_suite(&registry, std::slice::from_ref(&spec));
        let world = SnapifyWorld::boot(registry);
        let run = Arc::new(WorkloadRun::launch(world.coi(), &spec, 0).unwrap());
        let handle = run.handle().clone();
        let host = run.host_proc().clone();
        let driver = {
            let r = Arc::clone(&run);
            host.spawn_thread("driver", move || r.run_to_completion())
        };
        simkernel::sleep(simkernel::time::ms(17));
        let (_s, report) =
            checkpoint_application(&world, &handle, &run.host_state(), "/snap/det").unwrap();
        let result = driver.join().unwrap();
        assert!(result.verified);
        run.destroy().unwrap();
        (
            report.total.as_nanos(),
            report.device_snapshot_bytes,
            report.host_snapshot_bytes,
            result.runtime.as_nanos(),
        )
    })
}

#[test]
fn identical_scenarios_produce_identical_timings() {
    let a = checkpointed_run();
    let b = checkpointed_run();
    assert_eq!(a, b, "the simulation must be deterministic");
}

#[test]
fn kernel_traces_are_identical() {
    // Compare (length, digest) instead of materializing and cloning two
    // full event vectors: trace_digest() hashes in place under the
    // scheduler lock, so the comparison is O(1) memory.
    let trace = || {
        let k = Kernel::new();
        k.enable_trace();
        for i in 0..6u64 {
            k.spawn(format!("t{i}"), move || {
                for j in 0..5 {
                    simkernel::sleep(simkernel::time::us(i * 13 + j * 7));
                }
            });
        }
        k.run();
        (k.trace_len(), k.trace_digest())
    };
    let (n1, d1) = trace();
    let (n2, d2) = trace();
    assert!(n1 > 0);
    assert_eq!((n1, d1), (n2, d2), "the simulation must be deterministic");
}

#[test]
fn migration_timings_are_deterministic() {
    let run_once = || {
        Kernel::run_root(|| {
            let spec = by_name("MC").unwrap().scaled(64, 10);
            let registry = FunctionRegistry::new();
            register_suite(&registry, std::slice::from_ref(&spec));
            let world = SnapifyWorld::boot(registry);
            let run = WorkloadRun::launch(world.coi(), &spec, 0).unwrap();
            let handle = run.handle().clone();
            let t0 = simkernel::now();
            snapify_migrate(&handle, 1).unwrap();
            let d = simkernel::now() - t0;
            run.destroy().unwrap();
            d.as_nanos()
        })
    };
    assert_eq!(run_once(), run_once());
}
