//! Property tests of the content-addressed snapshot store: dedup is an
//! optimization, never a semantic change. For arbitrary region mutations
//! between two checkpoints, restoring from the dedup store's manifest
//! must be byte-identical to restoring from a full image shipped through
//! the raw backend — under FIFO scheduling and under seeded random
//! wakeup order (the pipelined shipper thread must not introduce
//! schedule-dependent corruption).

use std::sync::Arc;

use proptest::prelude::*;
use snapify_repro::blcr_sim::{checkpoint, restart, BlcrConfig};
use snapify_repro::phi_platform::{Payload, PhiServer, PlatformParams, MB};
use snapify_repro::simkernel::{Kernel, SchedPolicy};
use snapify_repro::simproc::{PidAllocator, SimProcess, SnapshotStorage};
use snapify_repro::snapify_io::SnapifyIo;
use snapify_repro::snapstore::{Dedup, DedupConfig};

const REGIONS: usize = 4;
const REGION_BYTES: u64 = 6 * MB;

/// Checkpoint the same process through the dedup store and through the
/// raw backend, twice, with `mutations` applied in between; after each
/// round, restarts from both paths must agree byte-for-byte with each
/// other and with the live process.
fn dedup_matches_full_image(policy: SchedPolicy, seed: u64, mutations: Vec<(u8, u64)>) {
    Kernel::run_root_with(policy, move || {
        let server = PhiServer::new(PlatformParams::default());
        let backend: Arc<SnapifyIo> = Arc::new(SnapifyIo::new_default(&server));
        let dedup = Dedup::new(&server, backend.clone(), DedupConfig::default());
        let node = server.device(0).clone();
        let pids = PidAllocator::new();
        let cfg = BlcrConfig::default();

        let proc = SimProcess::new(pids.alloc(), "p", &node);
        for r in 0..REGIONS {
            proc.memory()
                .map_region(
                    &format!("r{r}"),
                    Payload::synthetic(seed ^ r as u64, REGION_BYTES),
                )
                .unwrap();
        }

        let verify_round = |round: usize| {
            let live = proc.memory().digest();
            let dedup_path = format!("/prop/dedup{round}");
            let full_path = format!("/prop/full{round}");
            for (storage, path) in [
                (&dedup as &dyn SnapshotStorage, dedup_path.as_str()),
                (backend.as_ref() as &dyn SnapshotStorage, full_path.as_str()),
            ] {
                let mut sink = storage.sink(node.id(), path).unwrap();
                checkpoint(&cfg, &proc, b"state", sink.as_mut()).unwrap();
            }
            for (storage, path) in [
                (&dedup as &dyn SnapshotStorage, dedup_path.as_str()),
                (backend.as_ref() as &dyn SnapshotStorage, full_path.as_str()),
            ] {
                let mut src = storage.source(node.id(), path).unwrap();
                let restored = restart(&cfg, &node, &pids, src.as_mut()).unwrap();
                assert_eq!(
                    restored.proc.memory().digest(),
                    live,
                    "round {round}: restore from {} diverges from live process",
                    storage.label()
                );
                assert_eq!(restored.runtime_state, b"state");
                restored.proc.exit();
            }
        };

        verify_round(0);
        for (region, new_seed) in &mutations {
            let r = *region as usize % REGIONS;
            proc.memory()
                .update_region(
                    &format!("r{r}"),
                    Payload::synthetic(*new_seed, REGION_BYTES),
                )
                .unwrap();
        }
        verify_round(1);

        // The second dedup checkpoint reuses every untouched chunk: with
        // fewer mutated regions than total regions, some chunks must hit.
        let distinct: std::collections::HashSet<usize> = mutations
            .iter()
            .map(|(r, _)| *r as usize % REGIONS)
            .collect();
        if distinct.len() < REGIONS {
            assert!(
                dedup.stats().chunks_hit > 0,
                "unmutated regions must dedup: {:?}",
                dedup.stats()
            );
        }
        proc.exit();
    });
}

/// The warm restore cache is an optimization, never a semantic change:
/// restoring through a warm store (default cache) and through a cold
/// store (cache disabled) must both be byte-identical to the live
/// process, for arbitrary mutation sets and wakeup orders — while the
/// byte accounting proves the warm path actually skipped the transport.
fn warm_restore_matches_cold(policy: SchedPolicy, seed: u64, mutations: Vec<(u8, u64)>) {
    Kernel::run_root_with(policy, move || {
        let server = PhiServer::new(PlatformParams::default());
        let backend: Arc<SnapifyIo> = Arc::new(SnapifyIo::new_default(&server));
        let warm = Dedup::new(&server, backend.clone(), DedupConfig::default());
        let cold = Dedup::new(
            &server,
            backend.clone(),
            DedupConfig {
                restore_cache_bytes: 0,
                ..DedupConfig::default()
            },
        );
        let node = server.device(0).clone();
        let pids = PidAllocator::new();
        let cfg = BlcrConfig::default();

        let proc = SimProcess::new(pids.alloc(), "p", &node);
        for r in 0..REGIONS {
            proc.memory()
                .map_region(
                    &format!("r{r}"),
                    Payload::synthetic(seed ^ r as u64, REGION_BYTES),
                )
                .unwrap();
        }
        for (region, new_seed) in &mutations {
            let r = *region as usize % REGIONS;
            proc.memory()
                .update_region(
                    &format!("r{r}"),
                    Payload::synthetic(*new_seed, REGION_BYTES),
                )
                .unwrap();
        }

        let live = proc.memory().digest();
        for (store, path) in [(&warm, "/prop/warm"), (&cold, "/prop/cold")] {
            let mut sink = store.sink(node.id(), path).unwrap();
            checkpoint(&cfg, &proc, b"state", sink.as_mut()).unwrap();
            let mut src = store.source(node.id(), path).unwrap();
            let restored = restart(&cfg, &node, &pids, src.as_mut()).unwrap();
            assert_eq!(
                restored.proc.memory().digest(),
                live,
                "restore through the {} store diverges from the live process",
                if store.stats().restore_bytes_avoided > 0 {
                    "warm"
                } else {
                    "cold"
                }
            );
            assert_eq!(restored.runtime_state, b"state");
            restored.proc.exit();
        }

        // The capture node's chunks were warmed at commit, so the warm
        // store's restore skips the transport entirely; the cold store
        // must account every byte as fetched.
        assert!(
            warm.stats().restore_bytes_avoided > 0,
            "warm restore never hit the cache: {:?}",
            warm.stats()
        );
        assert_eq!(warm.stats().restore_bytes_fetched, 0);
        assert_eq!(cold.stats().restore_bytes_avoided, 0);
        assert!(
            cold.stats().restore_bytes_fetched >= REGIONS as u64 * REGION_BYTES,
            "cold restore must re-ship the image: {:?}",
            cold.stats()
        );
        proc.exit();
    });
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// FIFO scheduling: dedup'd restore equals full-image restore for
    /// arbitrary mutation sets.
    #[test]
    fn dedup_roundtrip_matches_full_image_fifo(
        seed in 0u64..1_000_000,
        mutations in prop::collection::vec((any::<u8>(), 0u64..1_000_000), 0..6),
    ) {
        dedup_matches_full_image(SchedPolicy::Fifo, seed, mutations);
    }

    /// Randomized wakeup order: the pipelined shipper may interleave
    /// with the capture arbitrarily, and the result must not change.
    #[test]
    fn dedup_roundtrip_matches_full_image_random_sched(
        sched_seed in 1u64..u64::MAX,
        seed in 0u64..1_000_000,
        mutations in prop::collection::vec((any::<u8>(), 0u64..1_000_000), 0..6),
    ) {
        dedup_matches_full_image(SchedPolicy::Random(sched_seed), seed, mutations);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// FIFO scheduling: warm (cached) restore equals cold restore equals
    /// the live process, and the cache demonstrably skipped the wire.
    #[test]
    fn warm_restore_matches_cold_fifo(
        seed in 0u64..1_000_000,
        mutations in prop::collection::vec((any::<u8>(), 0u64..1_000_000), 0..6),
    ) {
        warm_restore_matches_cold(SchedPolicy::Fifo, seed, mutations);
    }

    /// Randomized wakeup order: the pipelined restore prefetcher may
    /// interleave with the BLCR replay arbitrarily; bytes must not change.
    #[test]
    fn warm_restore_matches_cold_random_sched(
        sched_seed in 1u64..u64::MAX,
        seed in 0u64..1_000_000,
        mutations in prop::collection::vec((any::<u8>(), 0u64..1_000_000), 0..6),
    ) {
        warm_restore_matches_cold(SchedPolicy::Random(sched_seed), seed, mutations);
    }
}
