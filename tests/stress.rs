//! Stress: many offload processes with live traffic on both coprocessors
//! while snapshots, swaps and migrations interleave. Exercises the daemon
//! monitor's multi-request path, RDMA window bookkeeping at scale, and
//! memory accounting under churn.

use snapify_repro::coi_sim::{DeviceBinary, FunctionRegistry};
use snapify_repro::prelude::*;
use std::sync::Arc;

fn registry() -> FunctionRegistry {
    let reg = FunctionRegistry::new();
    reg.register(
        DeviceBinary::new("stress.so", MB, 16 * MB).simple_function("churn", |ctx| {
            ctx.compute(5e8, 60);
            let n = ctx.buffer_len(0);
            let prev = ctx
                .private("gen")
                .map(|p| u64::from_le_bytes(p.to_bytes().try_into().unwrap()))
                .unwrap_or(0);
            ctx.set_private("gen", Payload::bytes((prev + 1).to_le_bytes().to_vec()));
            ctx.write_buffer(0, Payload::synthetic(prev + 1, n));
            (prev + 1).to_le_bytes().to_vec()
        }),
    );
    reg
}

#[test]
fn eight_processes_with_interleaved_snapshots() {
    Kernel::run_root(|| {
        let world = SnapifyWorld::boot(registry());
        let host = world.coi().create_host_process("stress");

        // Eight processes, four per device, each with a 64 MiB buffer.
        // (Scaled up from six once dispatch got cheap — see simkernel's
        // hot-path notes; the wall-clock budget is set by events/sec.)
        let mut procs = Vec::new();
        for i in 0..8usize {
            let h = world
                .coi()
                .create_process(&host, i % 2, "stress.so")
                .unwrap();
            let buf = h.create_buffer(64 * MB).unwrap();
            h.buffer_write(&buf, Payload::synthetic(i as u64, 64 * MB))
                .unwrap();
            procs.push((h, buf));
        }

        // Continuous offload traffic from eight driver threads.
        let mut drivers = Vec::new();
        for (i, (h, buf)) in procs.iter().enumerate() {
            let h = h.clone();
            let buf = Arc::clone(buf);
            drivers.push(host.clone().spawn_thread(&format!("drv{i}"), move || {
                let mut last = 0;
                for _ in 0..16 {
                    let ret = h.run_sync("churn", Vec::new(), &[&buf]).unwrap();
                    let gen = u64::from_le_bytes(ret.try_into().unwrap());
                    assert!(gen > last, "generation must advance");
                    last = gen;
                }
                last
            }));
        }

        // Meanwhile: snapshot all eight, concurrently, three times.
        simkernel::sleep(simkernel::time::ms(5));
        for round in 0..3 {
            let mut snaps = Vec::new();
            for (i, (h, _)) in procs.iter().enumerate() {
                let h = h.clone();
                let path = format!("/stress/r{round}/p{i}");
                snaps.push(host.clone().spawn_thread(&format!("snap{i}"), move || {
                    let snap = SnapifyT::new(&h, path);
                    snapify_pause(&snap)?;
                    snapify_capture(&snap, false)?;
                    snapify_wait(&snap)?;
                    snapify_resume(&snap)?;
                    Ok::<(), SnapifyError>(())
                }));
            }
            for s in snaps {
                s.join().unwrap();
            }
        }

        // All drivers complete correctly despite the snapshot storms.
        for d in drivers {
            assert_eq!(d.join(), 16);
        }

        // Now churn placement: migrate even processes to the other device.
        for (i, (h, _)) in procs.iter().enumerate() {
            if i % 2 == 0 {
                let target = 1 - h.device();
                snapify_migrate(h, target).unwrap();
            }
        }
        // Everything still works and buffers carry the latest generation.
        for (h, buf) in &procs {
            let ret = h.run_sync("churn", Vec::new(), &[buf]).unwrap();
            let gen = u64::from_le_bytes(ret.try_into().unwrap());
            assert_eq!(gen, 17);
        }
        for (h, _) in &procs {
            h.destroy().unwrap();
        }
        // No leaked device memory, no leaked RDMA windows.
        simkernel::sleep(simkernel::time::ms(2));
        assert_eq!(world.server().device(0).mem().used(), 0);
        assert_eq!(world.server().device(1).mem().used(), 0);
        assert_eq!(world.coi().scif().window_count(), 0);
    });
}

#[test]
fn rapid_swap_churn_between_processes() {
    Kernel::run_root(|| {
        let world = SnapifyWorld::boot(registry());
        let host = world.coi().create_host_process("churn");
        let a = world.coi().create_process(&host, 0, "stress.so").unwrap();
        let b = world.coi().create_process(&host, 0, "stress.so").unwrap();
        let ba = a.create_buffer(32 * MB).unwrap();
        let bb = b.create_buffer(32 * MB).unwrap();
        a.buffer_write(&ba, Payload::synthetic(0xA, 32 * MB))
            .unwrap();
        b.buffer_write(&bb, Payload::synthetic(0xB, 32 * MB))
            .unwrap();

        // Ten alternating swap cycles, with work in between.
        let mut out_a = None;
        for i in 0..10 {
            if i % 2 == 0 {
                out_a = Some(snapify_swapout(&a, &format!("/churn/a{i}")).unwrap());
                b.run_sync("churn", Vec::new(), &[&bb]).unwrap();
            } else {
                snapify_swapin(out_a.as_ref().unwrap(), 0).unwrap();
                a.run_sync("churn", Vec::new(), &[&ba]).unwrap();
            }
        }
        // Final state: a swapped in at i=9, both functional.
        let ga = a.run_sync("churn", Vec::new(), &[&ba]).unwrap();
        let gb = b.run_sync("churn", Vec::new(), &[&bb]).unwrap();
        assert_eq!(u64::from_le_bytes(ga.try_into().unwrap()), 6);
        assert_eq!(u64::from_le_bytes(gb.try_into().unwrap()), 6);
        a.destroy().unwrap();
        b.destroy().unwrap();
    });
}
