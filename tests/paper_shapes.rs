//! The paper's evaluation claims, encoded as assertions (at reduced
//! scale, so they run in the normal test suite). The full-scale numbers
//! are produced by `cargo bench`; these tests pin the *shapes* so a
//! regression in any cost model or protocol fails CI.

use snapify_repro::coi_sim::{CoiConfig, FunctionRegistry};
use snapify_repro::phi_platform::{NodeId, Payload, PhiServer, PlatformParams, MB};
use snapify_repro::prelude::*;
use snapify_repro::simproc::SnapshotStorage;
use snapify_repro::snapify_io::{Nfs, NfsConfig, NfsMode, Scp, ScpConfig, SnapifyIo};
use snapify_repro::workloads::{by_name, register_suite, suite};

fn write_time(method: &dyn SnapshotStorage, size: u64) -> f64 {
    let t0 = simkernel::now();
    let mut sink = method.sink(NodeId::device(0), "/shape/f").unwrap();
    for chunk in Payload::synthetic(size, size).chunks(8 << 20) {
        sink.write(chunk).unwrap();
    }
    sink.close().unwrap();
    (simkernel::now() - t0).as_secs_f64()
}

/// Table 3 shape: at large sizes Snapify-IO ≫ NFS ≫ scp; at 1 MB NFS wins.
#[test]
fn table3_ordering() {
    Kernel::run_root(|| {
        let server = PhiServer::new(PlatformParams::default());
        let sio = SnapifyIo::new_default(&server);
        let nfs = Nfs::new(&server, NfsConfig::default(), NfsMode::Plain);
        let scp = Scp::new(&server, ScpConfig::default());
        // 256 MB: clear ordering.
        let (t_sio, t_nfs, t_scp) = (
            write_time(&sio, 256 * MB),
            write_time(&nfs, 256 * MB),
            write_time(&scp, 256 * MB),
        );
        assert!(t_sio < t_nfs && t_nfs < t_scp, "{t_sio} {t_nfs} {t_scp}");
        assert!(t_nfs / t_sio > 3.0, "Snapify-IO must beat NFS by multiples");
        assert!(t_scp / t_sio > 15.0, "Snapify-IO must beat scp by >15x");
        // 1 MB: NFS wins (Snapify-IO pays its open overhead).
        assert!(write_time(&nfs, MB) < write_time(&sio, MB));
    });
}

/// Table 4 shape: Snapify-IO checkpoint speedup over NFS grows with
/// snapshot size; kernel buffering beats user buffering beats plain NFS.
#[test]
fn table4_ordering() {
    Kernel::run_root(|| {
        use snapify_repro::blcr_sim::{checkpoint, BlcrConfig};
        use snapify_repro::simproc::{PidAllocator, SimProcess};
        let server = PhiServer::new(PlatformParams::default());
        let node = server.device(0).clone();
        let pids = PidAllocator::new();
        let cfg = BlcrConfig::default();
        let methods: Vec<Box<dyn SnapshotStorage>> = vec![
            Box::new(Nfs::new(&server, NfsConfig::default(), NfsMode::Plain)),
            Box::new(Nfs::new(
                &server,
                NfsConfig::default(),
                NfsMode::BufferedKernel,
            )),
            Box::new(Nfs::new(
                &server,
                NfsConfig::default(),
                NfsMode::BufferedUser,
            )),
            Box::new(SnapifyIo::new_default(&server)),
        ];
        let time_ckpt = |m: &dyn SnapshotStorage, size: u64, tag: u64| -> f64 {
            let proc = SimProcess::new(pids.alloc(), "native", &node);
            proc.memory()
                .map_region("malloc", Payload::synthetic(tag, size))
                .unwrap();
            let t0 = simkernel::now();
            let mut sink = m.sink(node.id(), "/shape/ck").unwrap();
            checkpoint(&cfg, &proc, &[], sink.as_mut()).unwrap();
            let d = (simkernel::now() - t0).as_secs_f64();
            proc.exit();
            d
        };
        let size = 256 * MB;
        let nfs = time_ckpt(methods[0].as_ref(), size, 1);
        let kbuf = time_ckpt(methods[1].as_ref(), size, 2);
        let ubuf = time_ckpt(methods[2].as_ref(), size, 3);
        let sio = time_ckpt(methods[3].as_ref(), size, 4);
        assert!(
            sio < kbuf && kbuf < ubuf && ubuf < nfs,
            "{sio} {kbuf} {ubuf} {nfs}"
        );
        // Speedup grows with size.
        let small_ratio =
            time_ckpt(methods[0].as_ref(), MB, 5) / time_ckpt(methods[3].as_ref(), MB, 6);
        let big_ratio = nfs / sio;
        assert!(big_ratio > small_ratio, "speedup must grow with size");
    });
}

/// Fig 9 shape: Snapify's hooks cost something, but less than 5%, and MD
/// (most frequent offload regions) pays the most.
#[test]
fn fig9_overhead_bounds() {
    let run = |name: &'static str, config: CoiConfig| -> f64 {
        Kernel::run_root(move || {
            let spec = by_name(name).unwrap().scaled(32, 8);
            let registry = FunctionRegistry::new();
            register_suite(&registry, std::slice::from_ref(&spec));
            let world = SnapifyWorld::boot_with(PlatformParams::default(), config, registry);
            let r = WorkloadRun::launch(world.coi(), &spec, 0).unwrap();
            let result = r.run_to_completion().unwrap();
            assert!(result.verified);
            r.destroy().unwrap();
            result.runtime.as_secs_f64()
        })
    };
    let overhead = |name: &'static str| -> f64 {
        let stock = run(name, CoiConfig::stock());
        let snap = run(name, CoiConfig::default());
        (snap - stock) / stock * 100.0
    };
    let md = overhead("MD");
    let mc = overhead("MC");
    assert!(md > 0.0 && md < 8.0, "MD overhead out of range: {md:.2}%");
    assert!(mc < 1.0, "MC overhead should be tiny: {mc:.2}%");
    assert!(md > mc, "MD must pay the most (most frequent regions)");
}

/// Fig 10 shape: SS/SG pause (local store) dominates their checkpoint;
/// for buffer-light benchmarks the device snapshot dominates instead,
/// and swap-in is slower than swap-out.
#[test]
fn fig10_store_vs_snapshot_shapes() {
    Kernel::run_root(|| {
        let specs: Vec<WorkloadSpec> = suite().iter().map(|s| s.scaled(16, 100)).collect();
        let registry = FunctionRegistry::new();
        register_suite(&registry, &specs);
        let world = SnapifyWorld::boot(registry);

        let mut rows = Vec::new();
        for spec in &specs {
            let run = WorkloadRun::launch(world.coi(), spec, 0).unwrap();
            let handle = run.handle().clone();
            let t0 = simkernel::now();
            let snap = snapify_swapout(&handle, &format!("/shape/{}", spec.name)).unwrap();
            let t_out = simkernel::now();
            snapify_swapin(&snap, 1).unwrap();
            let t_in = simkernel::now();
            rows.push((
                spec.name,
                (t_out - t0).as_secs_f64(),
                (t_in - t_out).as_secs_f64(),
            ));
            run.destroy().unwrap();
        }
        for (name, out, inn) in &rows {
            assert!(
                inn > out,
                "{name}: swap-in ({inn}) must exceed swap-out ({out})"
            );
        }
        // SS (largest store+host) must be the slowest to swap out; MC the
        // fastest.
        let slowest = rows.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        let fastest = rows.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        assert_eq!(slowest.0, "SS");
        assert_eq!(fastest.0, "MC");
    });
}

/// Fig 11 shape: per-rank checkpoint size and CR time shrink with rank
/// count (asserted in `workloads::nas` tests at tiny scale; here we pin
/// the size arithmetic).
#[test]
fn fig11_partition_arithmetic() {
    use snapify_repro::workloads::nas::nas_suite;
    for mz in nas_suite() {
        let w1 = mz.per_rank(1);
        let w4 = mz.per_rank(4);
        assert_eq!(w1.host_bytes, 4 * w4.host_bytes);
        assert_eq!(w1.device_resident_bytes, 4 * w4.device_resident_bytes);
        assert_eq!(w1.store_bytes, 4 * w4.store_bytes);
        // Halo per rank does not shrink (surface, not volume).
        assert_eq!(w1.in_bytes, w4.in_bytes);
    }
}
