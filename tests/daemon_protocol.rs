//! Protocol edge cases of the COI daemon's Snapify services: requests
//! against unknown processes, out-of-order commands, repeated cycles, and
//! the monitor-thread lifecycle.

use snapify_repro::coi_sim::msgs::CtlMsg;
use snapify_repro::coi_sim::{DeviceBinary, FunctionRegistry};
use snapify_repro::prelude::*;

fn registry() -> FunctionRegistry {
    let reg = FunctionRegistry::new();
    reg.register(
        DeviceBinary::new("p.so", MB, 8 * MB).simple_function("noop", |ctx| {
            ctx.compute(1e8, 60);
            Vec::new()
        }),
    );
    reg
}

#[test]
fn pause_of_unknown_pid_reports_failure() {
    Kernel::run_root(|| {
        let world = SnapifyWorld::boot(registry());
        let host = world.coi().create_host_process("app");
        let h = world.coi().create_process(&host, 0, "p.so").unwrap();
        h.snapify_send_ctl(CtlMsg::SnapifyPause {
            pid: 9999,
            path: "/x".into(),
        })
        .unwrap();
        let reply = h.snapify_await_reply().unwrap();
        assert_eq!(reply, CtlMsg::SnapifyPauseComplete { ok: false });
        h.destroy().unwrap();
    });
}

#[test]
fn capture_without_pause_reports_failure() {
    Kernel::run_root(|| {
        let world = SnapifyWorld::boot(registry());
        let host = world.coi().create_host_process("app");
        let h = world.coi().create_process(&host, 0, "p.so").unwrap();
        // No pause was issued, so the daemon has no pipe for this pid.
        h.snapify_send_ctl(CtlMsg::SnapifyCapture {
            pid: h.pid(),
            path: "/x".into(),
            terminate: false,
        })
        .unwrap();
        match h.snapify_await_capture().unwrap() {
            CtlMsg::SnapifyCaptureComplete { ok, .. } => assert!(!ok),
            other => panic!("unexpected {other:?}"),
        }
        h.destroy().unwrap();
    });
}

#[test]
fn resume_without_pause_is_harmless() {
    Kernel::run_root(|| {
        let world = SnapifyWorld::boot(registry());
        let host = world.coi().create_host_process("app");
        let h = world.coi().create_process(&host, 0, "p.so").unwrap();
        h.snapify_send_ctl(CtlMsg::SnapifyResume { pid: h.pid() })
            .unwrap();
        let reply = h.snapify_await_reply().unwrap();
        assert_eq!(reply, CtlMsg::SnapifyResumeComplete);
        // The process still works.
        h.run_sync("noop", Vec::new(), &[]).unwrap();
        h.destroy().unwrap();
    });
}

#[test]
fn repeated_pause_resume_cycles() {
    Kernel::run_root(|| {
        let world = SnapifyWorld::boot(registry());
        let host = world.coi().create_host_process("app");
        let h = world.coi().create_process(&host, 0, "p.so").unwrap();
        for i in 0..5 {
            let snap = SnapifyT::new(&h, format!("/snap/cycle{i}"));
            snapify_pause(&snap).unwrap();
            snapify_capture(&snap, false).unwrap();
            snapify_wait(&snap).unwrap();
            snapify_resume(&snap).unwrap();
            // Fully functional between cycles.
            h.run_sync("noop", Vec::new(), &[]).unwrap();
        }
        h.destroy().unwrap();
    });
}

#[test]
fn concurrent_pauses_of_two_processes_share_the_monitor() {
    Kernel::run_root(|| {
        // Two processes on the same device: the daemon's single Snapify
        // monitor thread oversees both in-flight pauses (the paper's
        // active-request list).
        let world = SnapifyWorld::boot(registry());
        let host = world.coi().create_host_process("app");
        let h1 = world.coi().create_process(&host, 0, "p.so").unwrap();
        let h2 = world.coi().create_process(&host, 0, "p.so").unwrap();
        let s1 = SnapifyT::new(&h1, "/snap/m1");
        let s2 = SnapifyT::new(&h2, "/snap/m2");
        let h1c = h1.clone();
        let t1 = host.spawn_thread("p1", move || {
            snapify_pause(&SnapifyT::new(&h1c, "/snap/m1"))
        });
        let h2c = h2.clone();
        let t2 = host.spawn_thread("p2", move || {
            snapify_pause(&SnapifyT::new(&h2c, "/snap/m2"))
        });
        t1.join().unwrap();
        t2.join().unwrap();
        // Both paused; resume both (fresh SnapifyT descriptors are fine —
        // state lives in the daemon/offload side).
        snapify_resume(&s1).unwrap();
        snapify_resume(&s2).unwrap();
        h1.run_sync("noop", Vec::new(), &[]).unwrap();
        h2.run_sync("noop", Vec::new(), &[]).unwrap();
        h1.destroy().unwrap();
        h2.destroy().unwrap();
    });
}

#[test]
fn restore_from_garbage_path_fails_gracefully() {
    Kernel::run_root(|| {
        let world = SnapifyWorld::boot(registry());
        // Write junk where a manifest should be.
        world
            .server()
            .host()
            .fs()
            .append("/junk/local_store/manifest", Payload::bytes(vec![0xFF; 16]))
            .unwrap();
        let host = world.coi().create_host_process("app");
        let h = world.coi().create_process(&host, 0, "p.so").unwrap();
        let snap = snapify_swapout(&h, "/real").unwrap();
        let bogus = SnapifyT::new(&h, "/junk");
        let err = snapify_restore(&bogus, 0).unwrap_err();
        assert!(matches!(err, SnapifyError::RestoreFailed(_)));
        // Recovery still possible from the good snapshot.
        snapify_swapin(&snap, 1).unwrap();
        h.destroy().unwrap();
    });
}
