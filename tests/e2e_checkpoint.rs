//! End-to-end checkpoint/restart of real workloads, across every crate:
//! kernel → platform → SCIF → COI → Snapify → Snapify-IO → workloads.

use snapify_repro::coi_sim::FunctionRegistry;
use snapify_repro::prelude::*;
use snapify_repro::workloads::{by_name, register_suite};
use std::sync::Arc;

fn boot(names: &[&str], size_div: u64, iter_div: u64) -> (SnapifyWorld, Vec<WorkloadSpec>) {
    let specs: Vec<WorkloadSpec> = names
        .iter()
        .map(|n| by_name(n).unwrap().scaled(size_div, iter_div))
        .collect();
    let registry = FunctionRegistry::new();
    register_suite(&registry, &specs);
    (SnapifyWorld::boot(registry), specs)
}

/// Checkpoint mid-run, kill, restart, finish, verify — for several
/// workloads with very different size profiles.
#[test]
fn checkpoint_restart_roundtrip_across_profiles() {
    for name in ["MC", "SG", "JAC"] {
        Kernel::run_root(move || {
            let (world, specs) = boot(&[name], 64, 20);
            let spec = specs[0].clone();
            let run = Arc::new(WorkloadRun::launch(world.coi(), &spec, 0).unwrap());
            let handle = run.handle().clone();
            let host = run.host_proc().clone();

            let driver = {
                let r = Arc::clone(&run);
                host.spawn_thread("driver", move || r.run_to_completion())
            };
            simkernel::sleep(simkernel::time::ms(30));

            let path = format!("/snap/e2e/{name}");
            let host_state = run.host_state();
            let (_s, report) = checkpoint_application(&world, &handle, &host_state, &path).unwrap();
            assert!(report.device_snapshot_bytes > 0);
            assert!(driver.join().unwrap().verified, "{name} post-checkpoint");

            run.destroy().unwrap();
            host.exit();

            let restarted = restart_application(&world, &path, &spec.binary_name(), 1).unwrap();
            let resumed = snapify_repro::workloads::WorkloadRun::resume_after_restart(
                &spec,
                &restarted.handle,
                &restarted.host_proc,
                &restarted.host_state,
            );
            let result = resumed.run_to_completion().unwrap();
            assert!(result.verified, "{name} post-restart");
            resumed.destroy().unwrap();
        });
    }
}

/// A second checkpoint after a restart works (chained CR), and each
/// restart can land on a different device.
#[test]
fn chained_checkpoints_across_devices() {
    Kernel::run_root(|| {
        let (world, specs) = boot(&["KM"], 64, 40);
        let spec = specs[0].clone();
        let run = Arc::new(WorkloadRun::launch(world.coi(), &spec, 0).unwrap());
        let handle = run.handle().clone();
        let host = run.host_proc().clone();
        let driver = {
            let r = Arc::clone(&run);
            host.spawn_thread("driver", move || r.run_to_completion())
        };
        simkernel::sleep(simkernel::time::ms(10));

        // First checkpoint → restart on device 1.
        let (_s1, _) =
            checkpoint_application(&world, &handle, &run.host_state(), "/snap/chain1").unwrap();
        assert!(driver.join().unwrap().verified);
        run.destroy().unwrap();
        host.exit();
        let r1 = restart_application(&world, "/snap/chain1", &spec.binary_name(), 1).unwrap();
        let resumed1 =
            WorkloadRun::resume_after_restart(&spec, &r1.handle, &r1.host_proc, &r1.host_state);

        // Second checkpoint of the restarted app → restart on device 0.
        let (_s2, _) =
            checkpoint_application(&world, &r1.handle, &resumed1.host_state(), "/snap/chain2")
                .unwrap();
        r1.handle.destroy().unwrap();
        r1.host_proc.exit();
        let r2 = restart_application(&world, "/snap/chain2", &spec.binary_name(), 0).unwrap();
        let resumed2 =
            WorkloadRun::resume_after_restart(&spec, &r2.handle, &r2.host_proc, &r2.host_state);
        let result = resumed2.run_to_completion().unwrap();
        assert!(result.verified);
        assert_eq!(r2.handle.device(), 0);
        resumed2.destroy().unwrap();
    });
}

/// Snapshots taken at every phase of a short run all restart correctly
/// (start, mid, near-end).
#[test]
fn checkpoint_at_every_iteration_boundary() {
    Kernel::run_root(|| {
        let (world, specs) = boot(&["MC"], 128, 10);
        let spec = specs[0].clone();
        for pause_after_ms in [1u64, 40, 120] {
            let run = Arc::new(WorkloadRun::launch(world.coi(), &spec, 0).unwrap());
            let handle = run.handle().clone();
            let host = run.host_proc().clone();
            let driver = {
                let r = Arc::clone(&run);
                host.spawn_thread("driver", move || r.run_to_completion())
            };
            simkernel::sleep(simkernel::time::ms(pause_after_ms));
            let path = format!("/snap/everyiter/{pause_after_ms}");
            let (_s, _) =
                checkpoint_application(&world, &handle, &run.host_state(), &path).unwrap();
            assert!(driver.join().unwrap().verified);
            run.destroy().unwrap();
            host.exit();
            let restarted = restart_application(&world, &path, &spec.binary_name(), 0).unwrap();
            let resumed = WorkloadRun::resume_after_restart(
                &spec,
                &restarted.handle,
                &restarted.host_proc,
                &restarted.host_state,
            );
            assert!(resumed.run_to_completion().unwrap().verified);
            resumed.destroy().unwrap();
        }
    });
}

/// The pause really produces a globally-drained state, and the host
/// snapshot and device snapshot agree on the host-state phase counter.
#[test]
fn pause_produces_consistent_cut() {
    Kernel::run_root(|| {
        let (world, specs) = boot(&["JAC"], 64, 20);
        let spec = specs[0].clone();
        let run = Arc::new(WorkloadRun::launch(world.coi(), &spec, 0).unwrap());
        let handle = run.handle().clone();
        let host = run.host_proc().clone();
        let driver = {
            let r = Arc::clone(&run);
            host.spawn_thread("driver", move || r.run_to_completion())
        };
        simkernel::sleep(simkernel::time::ms(25));

        let snap = SnapifyT::new(&handle, "/snap/cut");
        snapify_pause(&snap).unwrap();
        // The §3 consistency invariant, observed directly:
        let rt = world.coi().daemon(0).runtime(handle.pid()).unwrap();
        assert!(rt.channels_drained());
        assert_eq!(handle.run_outbound_pending(), 0);
        snapify_capture(&snap, false).unwrap();
        snapify_wait(&snap).unwrap();
        snapify_resume(&snap).unwrap();

        assert!(driver.join().unwrap().verified);
        run.destroy().unwrap();
    });
}
