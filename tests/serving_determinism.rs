//! Serving determinism: the same seed + config replays byte-identically.
//!
//! * Two plain-kernel runs of one config produce the identical kernel
//!   trace digest and the identical `BENCH_serving`-style summary.
//! * The scenario run as a cluster node body yields the identical
//!   report (and summary bytes) on a 1-domain and a 4-domain
//!   `MultiNodeCluster` — parallel domain execution must never leak
//!   wall-clock interleaving into serving results.

use serving::{run_scenario, EvictionPolicy, ServingConfig, ServingReport, TrafficConfig};
use snapify_repro::phi_platform::PlatformParams;
use snapify_repro::prelude::Kernel;
use snapify_repro::snapify::MultiNodeCluster;

fn config() -> ServingConfig {
    ServingConfig {
        devices: 2,
        swap_workers: 2,
        policy: EvictionPolicy::Popularity,
        traffic: TrafficConfig {
            tenants: 8,
            zipf_s: 1.2,
            rate_per_sec: 10.0,
            requests: 100,
            ..TrafficConfig::default()
        },
        ..ServingConfig::default()
    }
}

/// One traced run: report plus the kernel's `(trace_len, trace_digest)`.
fn traced_run() -> (ServingReport, usize, u64) {
    let kernel = Kernel::new();
    kernel.enable_trace();
    let h = kernel.spawn("serving-root", || run_scenario(&config()));
    kernel.run();
    let report = h.take_result().expect("serving root finished");
    (report, kernel.trace_len(), kernel.trace_digest())
}

#[test]
fn same_seed_and_config_replays_byte_identically() {
    let (first, len1, digest1) = traced_run();
    let (second, len2, digest2) = traced_run();
    assert_eq!(
        (len1, digest1),
        (len2, digest2),
        "kernel trace must replay byte-identically"
    );
    assert!(len1 > 0, "tracing must actually be on");
    assert_eq!(first, second, "reports must be structurally identical");
    assert_eq!(
        first.summary(),
        second.summary(),
        "summaries must be byte-identical"
    );
    // The summary really carries the distribution, not just counts.
    assert!(first.summary().contains("cold: count="));
    assert!(first.cold.count > 0 && first.warm.count > 0);
}

/// Run the scenario as node 0 of an n-node cluster split over
/// `domains` time domains; peer nodes run small sleeping bodies so
/// every domain has work.
fn cluster_run(domains: u32) -> ServingReport {
    let cluster = MultiNodeCluster::new(4, domains, PlatformParams::default());
    let serve = cluster.spawn_node(0, "serving", || run_scenario(&config()));
    let peers: Vec<_> = (1..4)
        .map(|n| {
            cluster.spawn_node(n, "peer", move || {
                simkernel::sleep(simkernel::time::ms(5 * n as u64));
                n
            })
        })
        .collect();
    cluster.run();
    for (i, p) in peers.into_iter().enumerate() {
        assert_eq!(p.take_result(), Some(i + 1));
    }
    serve.take_result().expect("serving node finished")
}

#[test]
fn report_is_identical_across_domain_counts() {
    let serial = cluster_run(1);
    let parallel = cluster_run(4);
    assert_eq!(
        serial, parallel,
        "4 domains must not change serving results"
    );
    assert_eq!(serial.summary(), parallel.summary());
    assert!(serial.cold.count > 0 && serial.warm.count > 0);
}
