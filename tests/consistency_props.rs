//! Property tests of the paper's core claim: a snapshot taken at *any*
//! point of an offload application's execution is a consistent global
//! state — every SCIF channel is drained at capture time, and the
//! restarted application produces exactly the output of an undisturbed
//! run.
//!
//! The simulation is deterministic, so "snapshot at a random virtual
//! time" is a reproducible property, not a flaky stress test.

use proptest::prelude::*;
use snapify_repro::coi_sim::FunctionRegistry;
use snapify_repro::prelude::*;
use snapify_repro::workloads::{by_name, register_suite};
use std::sync::Arc;

/// Scheduler seeds for the randomized-policy matrix. The quick suite
/// runs the first two; `SIMCHAOS_SCHED_SWEEP=1` runs all eight.
const SCHED_SEEDS: [u64; 8] = [1, 7, 42, 99, 2024, 0x5eed, 0xdead_beef, 0xfeed_f00d];

fn sched_matrix() -> &'static [u64] {
    if std::env::var("SIMCHAOS_SCHED_SWEEP").is_ok_and(|v| v == "1") {
        &SCHED_SEEDS
    } else {
        &SCHED_SEEDS[..2]
    }
}

fn cr_roundtrip_with(
    policy: SchedPolicy,
    workload: &'static str,
    pause_at_us: u64,
    restart_device: usize,
) {
    Kernel::run_root_with(policy, move || {
        let spec = by_name(workload).unwrap().scaled(128, 30);
        let registry = FunctionRegistry::new();
        register_suite(&registry, std::slice::from_ref(&spec));
        let world = SnapifyWorld::boot(registry);

        let run = Arc::new(WorkloadRun::launch(world.coi(), &spec, 0).unwrap());
        let handle = run.handle().clone();
        let host = run.host_proc().clone();
        let driver = {
            let r = Arc::clone(&run);
            host.spawn_thread("driver", move || r.run_to_completion())
        };
        simkernel::sleep(SimDuration::from_micros(pause_at_us));

        // Pause at the chosen instant and observe the drain invariant,
        // then complete the Fig 5 callback flow (device capture + host
        // BLCR snapshot) by hand.
        let snap = SnapifyT::new(&handle, "/snap/prop");
        snapify_pause(&snap).unwrap();
        let rt = world.coi().daemon(0).runtime(handle.pid()).unwrap();
        prop_assert!(
            rt.channels_drained(),
            "channels not drained at capture point"
        );
        prop_assert_eq!(handle.run_outbound_pending(), 0);
        snapify_capture(&snap, false).unwrap();
        let host_state = run.host_state();
        snapify_repro::snapify::cr::host_checkpoint(&world, &host, &host_state, "/snap/prop")
            .unwrap();
        snapify_wait(&snap).unwrap();
        snapify_resume(&snap).unwrap();

        // The undisturbed continuation verifies...
        let result = driver.join().unwrap();
        prop_assert!(result.verified, "run corrupted by the snapshot cycle");

        // ...and so does a restart from the snapshot.
        run.destroy().unwrap();
        host.exit();
        let restarted =
            restart_application(&world, "/snap/prop", &spec.binary_name(), restart_device).unwrap();
        let resumed = WorkloadRun::resume_after_restart(
            &spec,
            &restarted.handle,
            &restarted.host_proc,
            &restarted.host_state,
        );
        let result = resumed.run_to_completion().unwrap();
        prop_assert!(result.verified, "restart diverged from the original run");
        resumed.destroy().unwrap();
        Ok(())
    })
    .unwrap();
}

fn cr_roundtrip(workload: &'static str, pause_at_us: u64, restart_device: usize) {
    cr_roundtrip_with(SchedPolicy::Fifo, workload, pause_at_us, restart_device);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Snapshot at an arbitrary virtual time during an arbitrary suite
    /// workload, restart on an arbitrary device: always consistent.
    #[test]
    fn snapshot_any_time_is_consistent(
        workload in prop::sample::select(vec!["MD", "MC", "JAC", "KM"]),
        pause_at_us in 500u64..200_000,
        device in 0usize..2,
    ) {
        cr_roundtrip(workload, pause_at_us, device);
    }

    /// Swap-out at an arbitrary time, swap-in on an arbitrary device:
    /// the run completes with correct output.
    #[test]
    fn swap_any_time_preserves_output(
        pause_at_us in 500u64..150_000,
        device in 0usize..2,
    ) {
        swap_roundtrip_with(SchedPolicy::Fifo, pause_at_us, device);
    }
}

fn swap_roundtrip_with(policy: SchedPolicy, pause_at_us: u64, device: usize) {
    Kernel::run_root_with(policy, move || {
        let spec = by_name("FFT").unwrap().scaled(128, 40);
        let registry = FunctionRegistry::new();
        register_suite(&registry, std::slice::from_ref(&spec));
        let world = SnapifyWorld::boot(registry);
        let run = Arc::new(WorkloadRun::launch(world.coi(), &spec, 0).unwrap());
        let handle = run.handle().clone();
        let host = run.host_proc().clone();
        let driver = {
            let r = Arc::clone(&run);
            host.spawn_thread("driver", move || r.run_to_completion())
        };
        simkernel::sleep(SimDuration::from_micros(pause_at_us));
        let snap = snapify_swapout(&handle, "/swap/prop").unwrap();
        snapify_swapin(&snap, device).unwrap();
        let result = driver.join().unwrap();
        assert!(result.verified);
        run.destroy().unwrap();
    });
}

/// The §3 consistency property is scheduler-independent: the same CR
/// and swap round trips hold when thread wakeup ties are broken by a
/// seeded RNG instead of FIFO order. Two seeds in the quick suite;
/// `SIMCHAOS_SCHED_SWEEP=1` widens the matrix to eight.
#[test]
fn consistency_holds_under_random_schedules() {
    for &seed in sched_matrix() {
        cr_roundtrip_with(
            SchedPolicy::Random(seed),
            "KM",
            500 + (seed % 50_000),
            (seed % 2) as usize,
        );
        swap_roundtrip_with(
            SchedPolicy::Random(seed),
            500 + (seed % 40_000),
            ((seed >> 1) % 2) as usize,
        );
    }
}
